package apsp

import (
	"fmt"

	"repro/internal/ear"
	"repro/internal/graph"
)

// This file adds shortest *path* reconstruction on top of the
// distance-only tables. The paper's pipeline stores S^r (reduced pairs)
// and the articulation table A; a path is recovered without any extra
// per-pair storage by greedy next-hop walks over those tables, expanding
// each reduced edge back into its degree-2 chain and each block-cut hop
// into an in-block walk.

// Path returns the vertices of a shortest x→y walk in the original graph,
// including both endpoints, or nil if y is unreachable from x.
func (a *EarAPSP) Path(x, y int32) []int32 {
	if x == y {
		return []int32{x}
	}
	if a.Query(x, y) >= Inf {
		return nil
	}
	red := a.Red
	kx, ky := red.OrigToKept[x], red.OrigToKept[y]
	switch {
	case kx >= 0 && ky >= 0:
		return a.keptPath(kx, ky)
	case kx >= 0:
		// walk from the kept side and reverse
		return reverseWalk(a.removedToKeptPath(y, kx))
	case ky >= 0:
		return a.removedToKeptPath(x, ky)
	}
	return a.removedPairPath(x, y)
}

// keptPath reconstructs the walk between two kept vertices: a greedy
// next-hop descent on the reduced graph, with every reduced edge expanded
// to its chain.
func (a *EarAPSP) keptPath(kx, ky int32) []int32 {
	out := []int32{a.Red.KeptToOrig[kx]}
	cur := kx
	r := a.Red.R
	adjNode, adjEdge := r.AdjNode(), r.AdjEdge()
	remaining := a.srAt(kx, ky)
	for cur != ky {
		lo, hi := r.AdjacencyRange(cur)
		best := int32(-1)
		bestEdge := int32(-1)
		bestVal := Inf
		for i := lo; i < hi; i++ {
			v, eid := adjNode[i], adjEdge[i]
			val := r.Edge(eid).W + a.srAt(v, ky)
			if val < bestVal {
				bestVal = val
				best = v
				bestEdge = eid
			}
		}
		if best < 0 || bestVal > remaining {
			panic(fmt.Sprintf("apsp: path reconstruction stuck at reduced vertex %d (remaining %v, best %v)",
				cur, remaining, bestVal))
		}
		appendChainWalk(&out, a.Red, bestEdge, a.Red.KeptToOrig[cur])
		remaining -= r.Edge(bestEdge).W
		cur = best
	}
	return out
}

// appendChainWalk expands reduced edge eid starting from original vertex
// `from` (one of the chain's endpoints) and appends the walk, skipping the
// duplicated first vertex.
func appendChainWalk(out *[]int32, red *ear.Reduced, eid int32, from int32) {
	c := &red.Chains[red.EdgeChain[eid]]
	var walk []int32
	if c.A == from {
		walk = c.WalkFromA()
	} else {
		walk = c.WalkFromB()
	}
	*out = append(*out, walk[1:]...)
}

// removedToKeptPath builds the walk from removed vertex x to kept vertex
// (reduced ID kv).
func (a *EarAPSP) removedToKeptPath(x int32, kv int32) []int32 {
	red := a.Red
	ax, bx, dax, dbx := red.Anchors(x)
	ci := red.ChainOf[x]
	c := &red.Chains[ci]
	pos := red.PosOf[x]
	viaA := addInf(dax, a.srAt(red.OrigToKept[ax], kv), 0)
	viaB := addInf(dbx, a.srAt(red.OrigToKept[bx], kv), 0)
	var out []int32
	if viaA <= viaB {
		out = append([]int32{}, c.SegmentToA(pos)...)
		rest := a.keptPath(red.OrigToKept[ax], kv)
		out = append(out, rest[1:]...)
	} else {
		out = append([]int32{}, c.SegmentToB(pos)...)
		rest := a.keptPath(red.OrigToKept[bx], kv)
		out = append(out, rest[1:]...)
	}
	return out
}

// removedPairPath handles two removed vertices: the four anchor routes and
// the direct along-chain walk when they share a chain.
func (a *EarAPSP) removedPairPath(x, y int32) []int32 {
	red := a.Red
	ax, bx, dax, dbx := red.Anchors(x)
	ay, by, day, dby := red.Anchors(y)
	kax, kbx := red.OrigToKept[ax], red.OrigToKept[bx]
	kay, kby := red.OrigToKept[ay], red.OrigToKept[by]
	cx := &red.Chains[red.ChainOf[x]]
	cy := &red.Chains[red.ChainOf[y]]
	px, py := red.PosOf[x], red.PosOf[y]

	type route struct {
		cost     graph.Weight
		xToA     bool // leave x toward chain endpoint A
		yFromA   bool // enter y from chain endpoint A
		anchorX  int32
		anchorY  int32
		sameWalk bool
	}
	best := route{cost: Inf}
	consider := func(r route) {
		if r.cost < best.cost {
			best = r
		}
	}
	consider(route{cost: addInf(dax, a.srAt(kax, kay), day), xToA: true, yFromA: true, anchorX: kax, anchorY: kay})
	consider(route{cost: addInf(dax, a.srAt(kax, kby), dby), xToA: true, yFromA: false, anchorX: kax, anchorY: kby})
	consider(route{cost: addInf(dbx, a.srAt(kbx, kay), day), xToA: false, yFromA: true, anchorX: kbx, anchorY: kay})
	consider(route{cost: addInf(dbx, a.srAt(kbx, kby), dby), xToA: false, yFromA: false, anchorX: kbx, anchorY: kby})
	if direct, _, ok := red.SameChain(x, y); ok {
		consider(route{cost: direct, sameWalk: true})
	}
	if best.cost >= Inf {
		return nil
	}
	if best.sameWalk {
		return cx.SegmentBetween(px, py)
	}
	var out []int32
	if best.xToA {
		out = append(out, cx.SegmentToA(px)...)
	} else {
		out = append(out, cx.SegmentToB(px)...)
	}
	mid := a.keptPath(best.anchorX, best.anchorY)
	out = append(out, mid[1:]...)
	// enter y's chain from the chosen endpoint and walk to y
	var entry []int32
	if best.yFromA {
		entry = reverseWalk(cy.SegmentToA(py)) // A ... y
	} else {
		entry = reverseWalk(cy.SegmentToB(py)) // B ... y
	}
	out = append(out, entry[1:]...)
	return out
}

func reverseWalk(w []int32) []int32 {
	out := make([]int32, len(w))
	for i, v := range w {
		out[len(w)-1-i] = v
	}
	return out
}

// Path returns a shortest u→v walk in the full graph, stitched across
// biconnected components through the gateway articulation points, or nil
// if v is unreachable.
func (o *Oracle) Path(u, v int32) []int32 {
	if u == v {
		return []int32{u}
	}
	if o.Query(u, v) >= Inf {
		return nil
	}
	iu, iv := o.BCT.CutIndex[u], o.BCT.CutIndex[v]
	switch {
	case iu >= 0 && iv >= 0:
		return o.apPath(iu, iv)
	case iu >= 0:
		return reverseWalk(o.regularToAPPath(v, iu))
	case iv >= 0:
		return o.regularToAPPath(u, iv)
	}
	bu, bv := o.BCT.BlockOf[u], o.BCT.BlockOf[v]
	if bu == bv {
		return o.blockPath(bu, u, v)
	}
	a1 := o.gatewayCut(bu, bv)
	a2 := o.gatewayCut(bv, bu)
	out := o.blockPath(bu, u, o.BCT.CutVertices[a1])
	mid := o.apPath(a1, a2)
	out = append(out, mid[1:]...)
	tail := o.blockPath(bv, o.BCT.CutVertices[a2], v)
	return append(out, tail[1:]...)
}

// regularToAPPath walks from regular vertex v... to articulation point ia,
// returned in v→AP order.
func (o *Oracle) regularToAPPath(v int32, ia int32) []int32 {
	bv := o.BCT.BlockOf[v]
	apVertex := o.BCT.CutVertices[ia]
	blk := o.Blocks[bv]
	if _, ok := blk.localOf[apVertex]; ok {
		return o.blockPath(bv, v, apVertex)
	}
	a2 := o.gatewayCut(bv, int32(len(o.Blocks))+ia)
	out := o.blockPath(bv, v, o.BCT.CutVertices[a2])
	mid := o.apPath(a2, ia)
	return append(out, mid[1:]...)
}

// blockPath answers an in-block path in parent vertex IDs.
func (o *Oracle) blockPath(bi int32, u, v int32) []int32 {
	blk := o.Blocks[bi]
	lu := blk.localOf[u]
	lv := blk.localOf[v]
	local := blk.Ear.Path(lu, lv)
	out := make([]int32, len(local))
	for i, x := range local {
		out[i] = blk.Sub.ToParentVertex[x]
	}
	return out
}

// apPath reconstructs the articulation-point-level walk by greedy next-hop
// descent on the AP graph, expanding each AP edge through its contributing
// block.
func (o *Oracle) apPath(ia, ib int32) []int32 {
	out := []int32{o.BCT.CutVertices[ia]}
	cur := ia
	g := o.apGraph
	adjNode, adjEdge := g.AdjNode(), g.AdjEdge()
	for cur != ib {
		lo, hi := g.AdjacencyRange(cur)
		best := int32(-1)
		bestEdge := int32(-1)
		bestVal := Inf
		for i := lo; i < hi; i++ {
			nb, eid := adjNode[i], adjEdge[i]
			val := g.Edge(eid).W + o.apAt(nb, ib)
			if val < bestVal {
				bestVal = val
				best = nb
				bestEdge = eid
			}
		}
		if best < 0 || bestVal > o.apAt(cur, ib) {
			panic(fmt.Sprintf("apsp: AP path reconstruction stuck at %d", cur))
		}
		blk := o.apEdgeBlock[bestEdge]
		seg := o.blockPath(blk, o.BCT.CutVertices[cur], o.BCT.CutVertices[best])
		out = append(out, seg[1:]...)
		cur = best
	}
	return out
}
