// Command oracled serves shortest-path and cycle-basis queries over HTTP
// from a distance oracle built once at startup. It loads a graph from any
// supported file format — including the binary .earg snapshots written by
// graphgen, which skip parsing on restart — or generates a named dataset,
// builds the ear-decomposition oracle (and, with -mcb, a minimum cycle
// basis), and answers JSON queries until SIGTERM/SIGINT, at which point it
// stops accepting connections and drains in-flight requests.
//
// Build-once/serve-many: -save-snapshot persists the built oracle (graph,
// ear reductions, distance tables, block-cut forest, articulation table)
// as one checksummed snapshot file, and -load-snapshot boots straight from
// such a file — written here or by cmd/apsp -snapshot — serving the first
// query without running any build phase.
//
//	oracled -file snapshot.earg -addr :8080
//	oracled -dataset Planar_1 -scale 0.02 -mcb
//	oracled -dataset Planar_1 -save-snapshot oracle.snap     # build once, persist
//	oracled -load-snapshot oracle.snap                       # boot with zero build work
//
//	curl 'localhost:8080/v1/distance?u=0&v=17'
//	curl 'localhost:8080/v1/path?u=0&v=17'
//	curl -d '{"sources":[0,3],"targets":[17,42]}' 'localhost:8080/v1/batch'
//	curl -d '{"deltas":[{"op":"weight","edge":0,"weight":5}]}' 'localhost:8080/v1/deltas'
//	curl 'localhost:8080/v1/mcb/cycle?i=0'
//	curl 'localhost:8080/v1/stats'
//	curl 'localhost:8080/debug/vars'
//
// The served graph is live: POST /v1/deltas applies an ordered script of
// edge weight changes, insertions, and deletions, recomputing only the
// affected blocks and swapping the new oracle in without dropping
// concurrent queries. With -save-delta-chain FILE, every successful apply
// rewrites FILE as base-oracle + delta-chain — a checksummed snapshot that
// -load-snapshot replays back to the daemon's current state.
//
// The API is versioned under /v1/. The original unversioned paths still
// answer identically but are deprecated aliases: they add a
// "Deprecation: true" header and a Link to the /v1 successor route. All
// errors use one JSON envelope: {"error": ..., "code": ...,
// "retry_after_ms": ...} (retry_after_ms present only on back-pressure).
//
// Queries are served through the internal/qe engine: per-source distance
// rows are computed lazily, coalesced across concurrent requests, and kept
// in an LRU cache; admission control bounds concurrent load and sheds the
// excess with 503 + Retry-After. Tune with -cache-rows, -max-inflight,
// -queue-depth, and -deadline.
//
// Request metrics (counters and latency histograms per endpoint, the
// engine's cache/queue counters and gauges, plus the oracle's build-phase
// timers) are exported under /stats and, via expvar, /debug/vars;
// /debug/pprof/ serves the standard profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apsp"
	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/jobs"
	"repro/internal/mcb"
	"repro/internal/obs"
	"repro/internal/qe"
	"repro/internal/registry"
	"repro/internal/shard"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		file      = flag.String("file", "", "graph file (.mtx, .gr, .earg snapshot, or edge list)")
		dataset   = flag.String("dataset", "", "named synthetic dataset")
		scale     = flag.Float64("scale", 0.03, "dataset scale")
		seed      = flag.Uint64("seed", 1, "dataset seed")
		workers   = flag.Int("workers", hetero.Workers(), "parallel workers for the oracle build")
		withMCB   = flag.Bool("mcb", false, "also compute a minimum cycle basis and serve /mcb/cycle")
		saveSnap  = flag.String("save-snapshot", "", "write the built oracle as a snapshot file and continue serving")
		loadSnap  = flag.String("load-snapshot", "", "serve from an oracle snapshot, skipping the build entirely (replaces -file/-dataset)")
		saveChain = flag.String("save-delta-chain", "", "persist base oracle + applied /v1/deltas scripts to this file after every apply")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		shardSnap = flag.String("shard-snapshot", "",
			"serve one cluster shard from this shard snapshot (internal row RPC only; written by cmd/shardplan)")
		clusterPlan = flag.String("cluster-plan", "",
			"serve as a cluster frontend routing by this plan manifest (requires -cluster-shards)")
		clusterShards = flag.String("cluster-shards", "",
			"comma-separated shard daemon base URLs, one per plan shard, in shard order")
	)
	engineCfg := cli.EngineFlags()
	registryCfg := cli.RegistryFlags(engineCfg)
	jobsCfg := cli.JobsFlags()
	shardCfg := cli.ShardFlags()
	cli.SetUsage("oracled", "[-file graph | -dataset name | -load-snapshot file | -snapshot-dir dir | -shard-snapshot file | -cluster-plan file -cluster-shards urls] [-addr host:port] [flags]")
	flag.Parse()

	rcfg := registryCfg()
	if err := validateServeOpts(serveOpts{
		snapshotDir:   rcfg.Dir,
		file:          *file,
		dataset:       *dataset,
		loadSnap:      *loadSnap,
		saveSnap:      *saveSnap,
		saveChain:     *saveChain,
		shardSnap:     *shardSnap,
		clusterPlan:   *clusterPlan,
		clusterShards: *clusterShards,
		withMCB:       *withMCB,
	}); err != nil {
		cli.BadUsage("oracled", err.Error())
	}

	// The signal context exists before the build phases, not just the serve
	// loop, so SIGINT during a long basis computation aborts it promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	obs.Default.Publish("obs")
	rcfg.Reg = obs.Default

	// Shard mode is a different daemon shape entirely: no /v1 surface, no
	// registry — just the internal row RPC over one shard snapshot.
	if *shardSnap != "" {
		runShardMode(ctx, *addr, *shardSnap, *drain)
		return
	}

	var basis *mcb.Result
	var rg *registry.Registry
	var remote *shard.RemoteSource
	if rcfg.Dir != "" {
		// Multi-tenant mode: every <name>.snap in the directory is a named
		// graph, hydrated lazily on its first query.
		var err error
		rg, err = registry.Open(rcfg)
		if err != nil {
			cli.Fatalf("oracled", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "oracled: multi-tenant: %d snapshots in %s (max %d resident) — hydration is lazy\n",
			len(rg.List()), rcfg.Dir, rg.MaxGraphs())
	} else if *clusterPlan != "" {
		// Frontend mode: no local oracle at all. Rows come from the shard
		// daemons through the fan-out source; the engine stack (cache,
		// coalescing, admission) applies to it unchanged.
		plan := loadClusterPlan(*clusterPlan)
		scfg := shardCfg()
		scfg.Plan = plan
		scfg.Addrs = splitShardAddrs(*clusterShards)
		scfg.Reg = obs.Default
		var err error
		remote, err = shard.NewRemoteSource(scfg)
		if err != nil {
			cli.Fatalf("oracled", "cluster frontend: %v", err)
		}
		cfg := engineCfg()
		cfg.Reg = obs.Default
		engine := qe.New(remote, cfg)
		rg, err = registry.Open(rcfg) // Dir "": static-only, serves exactly the frontend entry
		if err != nil {
			cli.Fatalf("oracled", "%v", err)
		}
		rg.AddRemote(registry.DefaultGraph, engine, plan.NumVertices)
		fmt.Fprintf(os.Stderr, "oracled: cluster frontend: plan epoch %d, %d vertices, %d blocks over %d shards\n",
			plan.Epoch, plan.NumVertices, plan.NumBlocks(), plan.NumShards)
	} else {
		// Single-graph mode: build (or snapshot-load) one oracle and pin it
		// as the registry's default graph. Its engine metrics stay at the
		// obs root, unprefixed, exactly as before multi-tenancy existed.
		var (
			g      *graph.Graph
			oracle *apsp.Oracle
		)
		if *loadSnap != "" {
			oracle = loadOracleSnapshot(*loadSnap)
			// Serve — and, with -mcb, compute the basis over — the exact graph
			// decoded from the snapshot; no other source can skew it.
			g = oracle.G
			fmt.Fprintf(os.Stderr, "oracled: snapshot %s (%d vertices, %d edges) loaded in %v — no build phases run\n",
				*loadSnap, g.NumVertices(), g.NumEdges(), oracle.BuildPhases.Get("snapshot.load"))
		} else {
			var name string
			var err error
			g, name, err = cli.LoadInput(*file, *dataset, *scale, *seed)
			if err != nil {
				cli.Exit("oracled", err)
			}
			start := time.Now()
			oracle = apsp.NewOracleParallel(g, *workers)
			fmt.Fprintf(os.Stderr, "oracled: graph %s (%d vertices, %d edges), oracle built in %v (phases %s)\n",
				name, g.NumVertices(), g.NumEdges(), time.Since(start), oracle.BuildPhases)
		}
		if *saveSnap != "" {
			if err := saveOracleSnapshot(*saveSnap, oracle); err != nil {
				cli.Fatalf("oracled", "save snapshot: %v", err)
			}
			fmt.Fprintf(os.Stderr, "oracled: wrote oracle snapshot %s\n", *saveSnap)
		}
		if *withMCB {
			start := time.Now()
			var err error
			basis, err = mcb.ComputeCtx(ctx, g, mcb.Options{UseEar: true, Workers: *workers, Seed: *seed})
			if err != nil {
				cli.Fatalf("oracled", "cycle basis: %v", err)
			}
			fmt.Fprintf(os.Stderr, "oracled: cycle basis: %d cycles, total weight %g, built in %v\n",
				len(basis.Cycles), basis.TotalWeight, time.Since(start))
		}
		cfg := engineCfg()
		cfg.Reg = obs.Default
		engine := qe.New(oracle, cfg)
		var err error
		rg, err = registry.Open(rcfg) // Dir "": static-only, serves exactly the pinned graph
		if err != nil {
			cli.Fatalf("oracled", "%v", err)
		}
		rg.AddStatic(registry.DefaultGraph, oracle, engine)
	}

	// Async job tier (-jobs-dir): jobs acquire graphs through the registry
	// exactly like interactive requests, so a running job pins its graph
	// against eviction and the entry drains behind it; crash recovery
	// resumes interrupted jobs from their persisted checkpoints at Open.
	var jm *jobs.Manager
	if jcfg := jobsCfg(); jcfg.Dir != "" {
		jcfg.Host = func(ctx context.Context, name string) (jobs.GraphRef, error) {
			return rg.Acquire(ctx, name)
		}
		jcfg.Known = func(name string) bool { _, ok := rg.Info(name); return ok }
		jcfg.Reg = obs.Default
		var err error
		jm, err = jobs.Open(jcfg)
		if err != nil {
			cli.Fatalf("oracled", "jobs: %v", err)
		}
		fmt.Fprintf(os.Stderr, "oracled: async jobs enabled, checkpoints in %s\n", jcfg.Dir)
	}

	s := newServer(rg, basis, jm, obs.Default)
	if remote != nil {
		s.enableCluster(remote)
	}
	if *saveChain != "" {
		base, err := rg.Acquire(ctx, registry.DefaultGraph)
		if err != nil {
			cli.Fatalf("oracled", "delta chain: %v", err)
		}
		err = s.enableChain(*saveChain, base.Oracle())
		base.Release()
		if err != nil {
			cli.Fatalf("oracled", "delta chain: %v", err)
		}
		fmt.Fprintf(os.Stderr, "oracled: delta chain persisting to %s\n", *saveChain)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatalf("oracled", "listen: %v", err)
	}
	srv := &http.Server{Handler: s.mux}
	fmt.Printf("oracled: serving on http://%s\n", ln.Addr())
	if err := serve(ctx, srv, ln, *drain); err != nil {
		cli.Fatalf("oracled", "%v", err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if jm != nil {
		// Before the registry: running jobs checkpoint their progress and
		// release their graph references, so rg.Close drains cleanly. The
		// interrupted checkpoints stay in the running state on disk and
		// resume on the next boot.
		jm.Close(cctx)
	}
	rg.Close(cctx)
	cancel()
	if remote != nil {
		remote.Close() // stops the health prober after the last query drains
	}
	fmt.Fprintln(os.Stderr, "oracled: drained, bye")
}

// serveOpts is the flag combination validateServeOpts rules on; a struct
// rather than positional parameters so the fail-fast tests read clearly.
type serveOpts struct {
	snapshotDir, file, dataset, loadSnap, saveSnap, saveChain string
	shardSnap, clusterPlan, clusterShards                     string
	withMCB                                                   bool
}

// validateServeOpts fails fast on contradictory flag combinations, before
// any expensive work. A snapshot already embeds its graph, so combining
// -load-snapshot with -file/-dataset would silently ignore one of them —
// with -mcb the basis could then be computed against a different graph
// than the one served. -snapshot-dir is a different serving mode entirely
// (many graphs, none of them "the" graph), so every single-graph source
// and persistence flag conflicts with it.
func validateServeOpts(o serveOpts) error {
	if o.shardSnap != "" {
		switch {
		case o.clusterPlan != "" || o.clusterShards != "":
			return fmt.Errorf("-shard-snapshot serves one shard's row RPC; the frontend flags (-cluster-plan/-cluster-shards) belong to a different daemon")
		case o.file != "" || o.dataset != "" || o.loadSnap != "" || o.snapshotDir != "":
			return fmt.Errorf("-shard-snapshot is the shard's only graph source; it cannot be combined with -file, -dataset, -load-snapshot, or -snapshot-dir")
		case o.withMCB || o.saveSnap != "" || o.saveChain != "":
			return fmt.Errorf("a shard daemon serves block rows only; -mcb, -save-snapshot, and -save-delta-chain do not apply")
		}
	}
	if o.clusterPlan != "" {
		switch {
		case o.clusterShards == "":
			return fmt.Errorf("-cluster-plan needs -cluster-shards: one shard base URL per plan shard, comma-separated, in shard order")
		case o.file != "" || o.dataset != "" || o.loadSnap != "" || o.snapshotDir != "":
			return fmt.Errorf("-cluster-plan serves rows from the shard daemons; it cannot be combined with -file, -dataset, -load-snapshot, or -snapshot-dir")
		case o.withMCB || o.saveSnap != "" || o.saveChain != "":
			return fmt.Errorf("a cluster frontend holds no local oracle; -mcb, -save-snapshot, and -save-delta-chain do not apply")
		}
	} else if o.clusterShards != "" {
		return fmt.Errorf("-cluster-shards without -cluster-plan: the shard list is meaningless without the plan manifest")
	}
	if o.loadSnap != "" && (o.file != "" || o.dataset != "") {
		return fmt.Errorf("-load-snapshot replaces -file/-dataset; do not combine them")
	}
	if o.snapshotDir != "" {
		switch {
		case o.file != "" || o.dataset != "" || o.loadSnap != "":
			return fmt.Errorf("-snapshot-dir serves many named graphs; it cannot be combined with -file, -dataset, or -load-snapshot")
		case o.withMCB:
			return fmt.Errorf("-mcb builds a basis for the single default graph; it cannot be combined with -snapshot-dir")
		case o.saveSnap != "":
			return fmt.Errorf("-save-snapshot persists the single built oracle; it cannot be combined with -snapshot-dir")
		case o.saveChain != "":
			return fmt.Errorf("-save-delta-chain records the default graph's history; it cannot be combined with -snapshot-dir")
		}
	}
	if o.withMCB && o.loadSnap == "" && o.file == "" && o.dataset == "" {
		return fmt.Errorf("-mcb needs a graph source: give -file, -dataset, or -load-snapshot")
	}
	return nil
}

// loadClusterPlan reads the frontend's plan manifest, exiting with a
// diagnostic on corruption or version skew.
func loadClusterPlan(path string) *shard.Plan {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatalf("oracled", "cluster plan: %v", err)
	}
	defer f.Close()
	p, err := shard.ReadPlan(f)
	if err != nil {
		cli.Fatalf("oracled", "cluster plan %s: %v", path, err)
	}
	return p
}

// splitShardAddrs parses the -cluster-shards list; position i is shard
// i's base URL, so order matters and empty elements are an error.
func splitShardAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			cli.Fatalf("oracled", "-cluster-shards has an empty element in %q", s)
		}
		out = append(out, p)
	}
	return out
}

// loadOracleSnapshot restores a served oracle from an oracle snapshot
// file, exiting with a diagnostic on any corruption or version skew.
func loadOracleSnapshot(path string) *apsp.Oracle {
	f, err := os.Open(path)
	if err != nil {
		cli.Fatalf("oracled", "load snapshot: %v", err)
	}
	defer f.Close()
	o, err := apsp.ReadOracle(f)
	if err != nil {
		cli.Fatalf("oracled", "load snapshot %s: %v", path, err)
	}
	return o
}

// saveOracleSnapshot writes the oracle snapshot atomically enough for a
// serving fleet: into a temp file first, renamed into place only after a
// successful write, so readers never observe a torn snapshot.
func saveOracleSnapshot(path string, o *apsp.Oracle) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := o.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// serve runs srv on ln until ctx is cancelled (SIGTERM/SIGINT), then shuts
// down gracefully: the listener closes immediately, in-flight requests get
// up to drain to finish.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(sctx)
}
