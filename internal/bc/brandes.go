// Package bc implements betweenness centrality. The paper's conclusion
// points at path-based computations beyond APSP/MCB as targets for the
// same ear/heterogeneous machinery, and the authors' companion work
// (Pachorkar et al., HiPC 2016; Sariyuce et al. [34]) computes betweenness
// centrality with exactly the per-source parallel structure used here:
// each work-unit is one source's Brandes dependency accumulation, spread
// over the CPU/GPU work queue.
//
// The implementation is the weighted Brandes algorithm: a Dijkstra-like
// forward phase recording predecessor DAG and path counts, and a reverse
// dependency accumulation. Parallel edges are supported (each parallel
// shortest edge contributes its own path); self-loops never lie on
// shortest paths and are ignored.
package bc

import (
	"math"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/sssp"
)

// Result holds centrality scores.
type Result struct {
	// Scores[v] is the betweenness centrality of v: the sum over vertex
	// pairs (s,t), s≠v≠t, of the fraction of shortest s–t paths through v.
	// Each unordered pair is counted twice (once per direction), the usual
	// convention for undirected Brandes; divide by 2 for per-pair values.
	Scores []float64
	// Relaxations is the forward-phase work, the device-model cost
	// measure.
	Relaxations int64
}

// state is the per-worker scratch for one source's Brandes pass.
type state struct {
	dist  []graph.Weight
	sigma []float64
	delta []float64
	preds [][]int32 // predecessor lists in the shortest path DAG
	order []int32   // vertices in non-decreasing settled order
	heap  *ds.IndexedHeap
}

func newState(n int) *state {
	return &state{
		dist:  make([]graph.Weight, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]int32, n),
		order: make([]int32, 0, n),
		heap:  ds.NewIndexedHeap(n),
	}
}

// sourceBFS is the unit-weight fast path of source: the forward phase is a
// plain BFS (O(n+m), no heap), with identical σ/predecessor bookkeeping.
func (st *state) sourceBFS(g *graph.Graph, s int32, acc []float64) int64 {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		st.dist[i] = inf
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.order = st.order[:0]
	st.dist[s] = 0
	st.sigma[s] = 1
	st.order = append(st.order, s)
	adjNode := g.AdjNode()
	var relax int64
	for qi := 0; qi < len(st.order); qi++ {
		v := st.order[qi]
		dv := st.dist[v]
		lo, hi := g.AdjacencyRange(v)
		for i := lo; i < hi; i++ {
			u := adjNode[i]
			if u == v {
				continue
			}
			relax++
			switch {
			case st.dist[u] >= inf:
				st.dist[u] = dv + 1
				st.sigma[u] = st.sigma[v]
				st.preds[u] = append(st.preds[u][:0], v)
				st.order = append(st.order, u)
			case st.dist[u] == dv+1:
				st.sigma[u] += st.sigma[v]
				st.preds[u] = append(st.preds[u], v)
			}
		}
	}
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		coef := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] * coef
		}
		if w != s {
			acc[w] += st.delta[w]
		}
	}
	return relax
}

// source runs one Brandes pass from s, accumulating into acc (caller
// synchronises). It returns the relaxation count.
func (st *state) source(g *graph.Graph, s int32, acc []float64) int64 {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		st.dist[i] = inf
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.order = st.order[:0]
	st.heap.Reset()
	st.dist[s] = 0
	st.sigma[s] = 1
	st.heap.Push(s, 0)
	adjNode, adjEdge := g.AdjNode(), g.AdjEdge()
	edges := g.Edges()
	var relax int64
	for st.heap.Len() > 0 {
		v, dv := st.heap.Pop()
		st.order = append(st.order, v)
		lo, hi := g.AdjacencyRange(v)
		for i := lo; i < hi; i++ {
			u, eid := adjNode[i], adjEdge[i]
			if u == v {
				continue // self-loop
			}
			relax++
			nd := dv + edges[eid].W
			switch {
			case nd < st.dist[u]:
				st.dist[u] = nd
				st.sigma[u] = st.sigma[v]
				st.preds[u] = append(st.preds[u][:0], v)
				st.heap.PushOrDecrease(u, nd)
			case nd == st.dist[u]:
				st.sigma[u] += st.sigma[v]
				st.preds[u] = append(st.preds[u], v)
			}
		}
	}
	// reverse accumulation
	for i := len(st.order) - 1; i >= 0; i-- {
		w := st.order[i]
		coef := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] * coef
		}
		if w != s {
			acc[w] += st.delta[w]
		}
	}
	return relax
}

const inf = graph.Weight(math.MaxFloat64)

// Sequential computes exact betweenness centrality with one worker.
func Sequential(g *graph.Graph) *Result {
	return Parallel(g, 1)
}

// Parallel computes exact betweenness centrality with the given number of
// goroutine workers, one Brandes source per work item. Unit-weight graphs
// automatically take the BFS forward phase instead of Dijkstra.
func Parallel(g *graph.Graph, workers int) *Result {
	n := g.NumVertices()
	if workers < 1 {
		workers = 1
	}
	unit := sssp.UnitWeights(g)
	states := make([]*state, workers)
	accs := make([][]float64, workers)
	relax := make([]int64, workers)
	for w := range states {
		states[w] = newState(n)
		accs[w] = make([]float64, n)
	}
	hetero.ParallelFor(workers, n, func(w, s int) {
		if unit {
			relax[w] += states[w].sourceBFS(g, int32(s), accs[w])
		} else {
			relax[w] += states[w].source(g, int32(s), accs[w])
		}
	})
	res := &Result{Scores: make([]float64, n)}
	for w := range accs {
		for v, x := range accs[w] {
			res.Scores[v] += x
		}
		res.Relaxations += relax[w]
	}
	return res
}

// Sim computes betweenness centrality under the simulated heterogeneous
// platform: one work-unit per source, big sources (by degree) toward the
// GPU end of the deque. It returns the result and the virtual schedule.
func Sim(g *graph.Graph, devices []*hetero.Device) (*Result, *hetero.Schedule) {
	n := g.NumVertices()
	st := newState(n)
	res := &Result{Scores: make([]float64, n)}
	units := make([]hetero.Unit, n)
	for s := 0; s < n; s++ {
		units[s] = hetero.Unit{ID: int32(s), Size: int64(g.Degree(int32(s)))}
	}
	sched := hetero.Run(units, devices, func(u hetero.Unit, d *hetero.Device) hetero.Cost {
		ops := st.source(g, u.ID, res.Scores)
		return hetero.Cost{Ops: ops, Launches: 1}
	})
	res.Relaxations = sched.TotalOps
	return res, sched
}

// TopK returns the k vertices with the highest centrality, ties broken by
// vertex ID, without sorting the full score vector.
func (r *Result) TopK(k int) []int32 {
	n := len(r.Scores)
	if k > n {
		k = n
	}
	out := make([]int32, 0, k)
	used := make([]bool, n)
	for len(out) < k {
		best := int32(-1)
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if best < 0 || r.Scores[v] > r.Scores[best] {
				best = int32(v)
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}
