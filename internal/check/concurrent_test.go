package check

import (
	"sync"
	"testing"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestOracleConcurrentQueries hammers a single oracle from many goroutines
// under -race: the oracle is immutable after build, so concurrent
// QueryChecked/PathChecked calls (including out-of-range probes) must be
// data-race free and keep agreeing with the Floyd–Warshall reference.
func TestOracleConcurrentQueries(t *testing.T) {
	cfg := gen.Config{MaxWeight: 9}
	rng := gen.NewRNG(0xbadcafe)
	g := gen.ChainBlocks([]*graph.Graph{
		gen.CycleNecklace(3, 3, cfg, rng),
		gen.Theta([]int{2, 3, 4}, cfg, rng),
		gen.LoopFlower(2, 3, cfg, rng),
	}, cfg, rng)
	g = gen.Subdivide(g, 0.5, 2, cfg, rng)

	o := apsp.NewOracle(g)
	ref := apsp.FloydWarshall(g)
	n := int32(g.NumVertices())

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker sweeps all pairs in a different order and mixes
			// in out-of-range probes so validation runs concurrently too.
			for i := int32(0); i < n; i++ {
				u := (i + int32(w)) % n
				for v := int32(0); v < n; v++ {
					d, err := o.QueryChecked(u, v)
					if err != nil {
						errs <- err
						return
					}
					if want := ref[int(u)*int(n)+int(v)]; d != want {
						errs <- &Divergence{Impl: "oracle(concurrent)", U: u, V: v, Got: d, Want: want}
						return
					}
					if perr := pairPath(g, o, u, v); perr != nil {
						errs <- perr
						return
					}
				}
				if _, err := o.QueryChecked(-1, n); err == nil {
					errs <- &Divergence{Impl: "oracle(concurrent): range probe accepted", U: -1, V: n}
					return
				}
				if _, err := o.PathChecked(n, -1); err == nil {
					errs <- &Divergence{Impl: "oracle(concurrent): range probe accepted", U: n, V: -1}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
