package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 0, 4)
	g := b.Build() // vertex 3 isolated
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:        "test",
		ShowWeights: true,
		Highlight:   []int32{1},
		EdgeColor:   map[int32]string{0: "red"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph test {",
		"0 -- 1",
		"label=\"2\"",
		"color=red",
		"fillcolor=lightblue",
		"  3;", // isolated vertex still present
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 5)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, b.Build(), DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph G {") {
		t.Fatal("default name missing")
	}
	if strings.Contains(buf.String(), "label=") {
		t.Fatal("weights shown without ShowWeights")
	}
}
