// Package apsp implements the paper's all-pairs shortest path algorithms:
// the ear-decomposition approach of Section 2 (Algorithm 1 for biconnected
// graphs, the block-cut tree extension of Section 2.2 for general graphs)
// and the three comparison baselines of Section 2.4.3 (plain per-source
// Dijkstra, the Banerjee et al. BCC approach, and the Djidjev et al.
// partition approach).
//
// Panic-free query contract: once an oracle is built, its query surface
// (Query, QueryChecked, Path, PathChecked, Row, Materialize) never panics
// on any input and never mutates oracle state — invalid vertex IDs surface
// as *QueryError from the *Checked variants (or nil/Inf from the unchecked
// ones), and every method is safe for concurrent callers. Long-lived
// serving processes (cmd/oracled) depend on both properties.
package apsp

import (
	"context"
	"math"

	"repro/internal/ear"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/sssp"
)

// Inf is the distance between disconnected vertices.
const Inf = sssp.Inf

// EarAPSP is the result of Algorithm 1 on a connected graph: the reduced
// graph, the all-pairs table S^r over reduced vertices, and O(1) queries
// for arbitrary vertex pairs via the post-processing formulas of
// Section 2.1.3.
type EarAPSP struct {
	G   *graph.Graph
	Red *ear.Reduced
	// SR is the nr×nr row-major distance table over reduced vertices
	// (S^r[s,t] in the paper). When the owning oracle was built with
	// Options.Compact32 the table lives in sr32 instead and SR is nil.
	SR   []graph.Weight
	sr32 []float32
	nr   int
	// Relaxations is the total Dijkstra work of the processing phase,
	// the work measure the virtual-clock devices charge. sweeps counts
	// frontier iterations when the GPU-structured kernel produced SR.
	Relaxations int64
	sweeps      int
}

// reduceForAPSP is the preprocessing step shared by every constructor.
func reduceForAPSP(g *graph.Graph) *ear.Reduced {
	return ear.Reduce(g, ear.APSP)
}

// NewEarAPSP runs the three phases of Algorithm 1 sequentially on a
// connected graph g: Reduce, per-source Dijkstra on G^r, and (lazily, at
// query time) UPDATE_DISTANCE.
func NewEarAPSP(g *graph.Graph) *EarAPSP {
	red := ear.Reduce(g, ear.APSP)
	a := &EarAPSP{G: g, Red: red, nr: red.R.NumVertices()}
	a.SR = make([]graph.Weight, a.nr*a.nr)
	sc := sssp.NewScratch(a.nr)
	for s := 0; s < a.nr; s++ {
		a.Relaxations += sssp.DistancesOnly(red.R, int32(s), a.SR[s*a.nr:(s+1)*a.nr], sc)
	}
	return a
}

// NewEarAPSPParallel is NewEarAPSP with the processing phase spread over
// real goroutine workers (one Dijkstra instance per thread, as the paper
// runs the CPU side).
func NewEarAPSPParallel(g *graph.Graph, workers int) *EarAPSP {
	a, _ := NewEarAPSPParallelCtx(context.Background(), g, workers)
	return a
}

// NewEarAPSPParallelCtx is NewEarAPSPParallel with cooperative
// cancellation: the per-source Dijkstra fan-out stops claiming sources
// once ctx is done and the context error is returned with no (partial)
// result. With a background context it never fails.
func NewEarAPSPParallelCtx(ctx context.Context, g *graph.Graph, workers int) (*EarAPSP, error) {
	red := ear.Reduce(g, ear.APSP)
	a := &EarAPSP{G: g, Red: red, nr: red.R.NumVertices()}
	a.SR = make([]graph.Weight, a.nr*a.nr)
	if workers < 1 {
		workers = 1
	}
	scratch := make([]*sssp.Scratch, workers)
	relax := make([]int64, workers)
	for i := range scratch {
		scratch[i] = sssp.NewScratch(a.nr)
	}
	if err := hetero.ParallelForCtx(ctx, workers, a.nr, func(w, s int) {
		relax[w] += sssp.DistancesOnly(red.R, int32(s), a.SR[s*a.nr:(s+1)*a.nr], scratch[w])
	}); err != nil {
		return nil, err
	}
	for _, r := range relax {
		a.Relaxations += r
	}
	return a, nil
}

// NewEarAPSPSim runs the processing phase under the simulated
// heterogeneous platform: each reduced vertex is a work-unit, the CPU-side
// kernel is heap Dijkstra and the GPU-side kernel is the frontier sweep of
// Harish & Narayanan. It returns the APSP result and the virtual schedule.
func NewEarAPSPSim(g *graph.Graph, devices []*hetero.Device) (*EarAPSP, *hetero.Schedule) {
	red := ear.Reduce(g, ear.APSP)
	a := &EarAPSP{G: g, Red: red, nr: red.R.NumVertices()}
	a.SR = make([]graph.Weight, a.nr*a.nr)
	units := make([]hetero.Unit, a.nr)
	// Unit size estimate: degree of the source — larger-degree sources
	// start bigger frontiers (the deque sorts by this).
	for s := 0; s < a.nr; s++ {
		units[s] = hetero.Unit{ID: int32(s), Size: int64(red.R.Degree(int32(s)))}
	}
	sc := sssp.NewScratch(a.nr)
	sched := hetero.Run(units, devices, func(u hetero.Unit, d *hetero.Device) hetero.Cost {
		row := a.SR[int(u.ID)*a.nr : (int(u.ID)+1)*a.nr]
		if d.Big { // GPU-structured kernel
			res, sweeps := sssp.FrontierSweeps(red.R, u.ID)
			copy(row, res.Dist)
			return hetero.Cost{Ops: res.Relaxations, Launches: sweeps}
		}
		ops := sssp.DistancesOnly(red.R, u.ID, row, sc)
		return hetero.Cost{Ops: ops, Launches: 1}
	})
	a.Relaxations = sched.TotalOps
	return a, sched
}

// srAt returns S^r between two reduced IDs.
func (a *EarAPSP) srAt(x, y int32) graph.Weight {
	if a.sr32 != nil {
		v := a.sr32[int(x)*a.nr+int(y)]
		if v > math.MaxFloat32 { // the +Inf32 sentinel reads back as exact Inf
			return Inf
		}
		return graph.Weight(v)
	}
	return a.SR[int(x)*a.nr+int(y)]
}

// compress moves the S^r table to float32 storage and drops the float64
// copy. See Options.Compact32 for the rounding and Inf-sentinel policy.
// Idempotent; called once per block at build/load/delta time, never on the
// query path.
func (a *EarAPSP) compress() {
	if a.sr32 != nil || a.SR == nil {
		return
	}
	a.sr32 = compressTable(a.SR)
	a.SR = nil
}

// Query returns the shortest-path distance between any two original
// vertices, applying the Section 2.1.3 case analysis:
//
//   - both kept: S^r directly;
//   - one removed: min over its two anchors;
//   - both removed: min over the four anchor combinations, plus the direct
//     along-chain path when both lie on the same ear (including the
//     wrap-around on loop chains, which one of the four combinations
//     covers).
func (a *EarAPSP) Query(x, y int32) graph.Weight {
	if x < 0 || int(x) >= a.G.NumVertices() || y < 0 || int(y) >= a.G.NumVertices() {
		return Inf
	}
	if x == y {
		return 0
	}
	red := a.Red
	kx, ky := red.OrigToKept[x], red.OrigToKept[y]
	switch {
	case kx >= 0 && ky >= 0:
		return a.srAt(kx, ky)
	case kx >= 0:
		return a.queryKeptRemoved(kx, y)
	case ky >= 0:
		return a.queryKeptRemoved(ky, x)
	}
	// both removed
	ax, bx, dax, dbx := red.Anchors(x)
	ay, by, day, dby := red.Anchors(y)
	kax, kbx := red.OrigToKept[ax], red.OrigToKept[bx]
	kay, kby := red.OrigToKept[ay], red.OrigToKept[by]
	best := addInf(dax, a.srAt(kax, kay), day)
	best = min3(best, dax, a.srAt(kax, kby), dby)
	best = min3(best, dbx, a.srAt(kbx, kay), day)
	best = min3(best, dbx, a.srAt(kbx, kby), dby)
	if direct, _, ok := red.SameChain(x, y); ok && direct < best {
		best = direct
	}
	return best
}

// queryKeptRemoved computes d(v, x) for kept (reduced ID kv) and removed x.
func (a *EarAPSP) queryKeptRemoved(kv, x int32) graph.Weight {
	red := a.Red
	ax, bx, dax, dbx := red.Anchors(x)
	da := addInf(dax, a.srAt(red.OrigToKept[ax], kv), 0)
	db := addInf(dbx, a.srAt(red.OrigToKept[bx], kv), 0)
	if da < db {
		return da
	}
	return db
}

func addInf(a, b, c graph.Weight) graph.Weight {
	if a >= Inf || b >= Inf || c >= Inf {
		return Inf
	}
	return a + b + c
}

func min3(best, a, b, c graph.Weight) graph.Weight {
	if s := addInf(a, b, c); s < best {
		return s
	}
	return best
}

// Row writes the distances from source x to every vertex into out
// (len ≥ n) — one UPDATE_DISTANCE work-unit of the post-processing phase.
// It returns the number of table operations performed (the phase's work
// measure).
func (a *EarAPSP) Row(x int32, out []graph.Weight) int64 {
	n := a.G.NumVertices()
	for y := 0; y < n; y++ {
		out[y] = a.Query(x, int32(y))
	}
	return int64(n)
}

// Materialize fills the complete n×n table by running UPDATE_DISTANCE from
// every source; benchmarks use it as the paper's post-processing workload,
// tests as ground truth.
func (a *EarAPSP) Materialize() []graph.Weight {
	n := a.G.NumVertices()
	out := make([]graph.Weight, n*n)
	for x := 0; x < n; x++ {
		a.Row(int32(x), out[x*n:(x+1)*n])
	}
	return out
}
