package hetero

import "fmt"

// Device describes one execution resource of the simulated platform. The
// virtual clock charges a work-unit of measured cost c executed in one of
// the device's slots as c/OpsPerSec seconds plus LaunchOverhead per batch.
//
// A CPU is modelled as one slot per effective core; a discrete GPU is
// modelled as a single slot whose throughput is the whole device's
// effective rate on irregular graph kernels (one kernel grid at a time,
// as on the paper's K40c) plus a per-launch overhead that penalises
// high-diameter frontier algorithms, exactly the effect real GPU SSSP
// exhibits.
type Device struct {
	Name            string
	Slots           int
	OpsPerSec       float64 // random-access operations per second per slot
	StreamOpsPerSec float64 // sequential (bandwidth-bound) operations per second per slot
	LaunchOverhead  float64 // seconds charged per batch (kernel launch)
	BatchSize       int     // units popped from the deque per request
	Big             bool    // pops from the big end of the deque
}

// Cost is the measured cost of executing one work-unit: Ops primitive
// operations (edge relaxations, words XORed, labels written) over Launches
// kernel launches (frontier sweeps; 1 for monolithic kernels). Stream marks
// units whose memory access is sequential (witness word scans), charged at
// the device's streaming rate instead of its random-access rate.
type Cost struct {
	Ops      int64
	Launches int
	Stream   bool
}

// Calibrated platform presets. The throughput ratios are calibrated to the
// paper's experimental platform (Section 2.4.1) using the paper's own
// measured cross-device speedups: a 20-core E5-2650 achieves ~3.1x a single
// core on these memory-bound kernels, and a K40c ~9x (Figure 5). The w/ vs
// w/o-ear-decomposition comparisons never depend on these constants — they
// come from measured operation counts.
const seqOpsPerSec = 100e6

const seqStreamOpsPerSec = 1e9 // one core streaming words at ~8 GB/s

// SequentialCPU models one core of the E5-2650.
func SequentialCPU() *Device {
	return &Device{Name: "cpu-seq", Slots: 1, OpsPerSec: seqOpsPerSec, StreamOpsPerSec: seqStreamOpsPerSec, BatchSize: 1}
}

// MulticoreCPU models the full 20-core E5-2650 under its 68 GB/s memory
// bandwidth ceiling: 20 slots whose aggregate is ~3.2x one core on both
// random and streaming access (bandwidth-bound either way).
func MulticoreCPU() *Device {
	return &Device{Name: "cpu-mc", Slots: 20, OpsPerSec: seqOpsPerSec * 0.16, StreamOpsPerSec: seqStreamOpsPerSec * 0.16, BatchSize: 4}
}

// TeslaK40c models the GPU: one grid at a time, ~9x a single CPU core on
// irregular kernels, 10µs launch overhead per kernel. The batch size is
// large because a GPU kernel covers a whole grid of work-units at once
// (one thread per tree, one block per witness); popping big batches from
// the queue's large end is also what the paper's work-queue policy does.
func TeslaK40c() *Device {
	return &Device{Name: "gpu-k40c", Slots: 1, OpsPerSec: seqOpsPerSec * 9, StreamOpsPerSec: seqStreamOpsPerSec * 8, LaunchOverhead: 10e-6, BatchSize: 256, Big: true}
}

func (d *Device) String() string {
	return fmt.Sprintf("%s{slots=%d, %.0f Mops/s}", d.Name, d.Slots, d.OpsPerSec/1e6)
}

// slotTime charges a batch of unit costs to one slot and returns the
// elapsed virtual seconds. A batch costs one kernel launch (units in a
// batch share a grid, one thread block per unit, as in the paper's
// one-thread-per-tree and one-block-per-witness kernels); units that
// internally need multiple level-synchronous sweeps (frontier SSSP) charge
// their extra launches on top.
func (d *Device) slotTime(costs []Cost) float64 {
	var t float64
	extraLaunches := 0
	for _, c := range costs {
		rate := d.OpsPerSec
		if c.Stream && d.StreamOpsPerSec > 0 {
			rate = d.StreamOpsPerSec
		}
		t += float64(c.Ops) / rate
		if c.Launches > 1 {
			extraLaunches += c.Launches - 1
		}
	}
	if len(costs) > 0 {
		extraLaunches++
	}
	t += d.LaunchOverhead * float64(extraLaunches)
	return t
}
