package apsp

import (
	"repro/internal/graph"
	"repro/internal/hetero"
)

// Graph analytics derived from the oracle: eccentricities, diameter,
// radius, Wiener index. These stream one UPDATE_DISTANCE row at a time
// (O(n) working memory), which is exactly the access pattern the paper's
// O(a²+Σnᵢ²) storage argument enables — a dense n² table is never
// materialised.

// Analytics summarises the distance distribution of a connected component
// (or the whole graph when it is connected).
type Analytics struct {
	// Eccentricity[v] is max_u d(v,u) over u reachable from v;
	// 0 for isolated vertices.
	Eccentricity []graph.Weight
	// Diameter and Radius are the max/min finite eccentricities over
	// vertices that reach at least one other vertex.
	Diameter, Radius graph.Weight
	// DiameterEndpoints is a vertex pair realising the diameter.
	DiameterEndpoints [2]int32
	// Center lists the vertices whose eccentricity equals the radius.
	Center []int32
	// WienerIndex is the sum of d(u,v) over unordered reachable pairs.
	WienerIndex graph.Weight
}

// ComputeAnalytics derives the summary from an oracle, parallelised over
// row sources.
func ComputeAnalytics(o *Oracle, workers int) *Analytics {
	n := o.G.NumVertices()
	a := &Analytics{Eccentricity: make([]graph.Weight, n)}
	if workers < 1 {
		workers = 1
	}
	type partial struct {
		wiener graph.Weight
	}
	parts := make([]partial, workers)
	hetero.ParallelFor(workers, n, func(w, src int) {
		var ecc graph.Weight
		var sum graph.Weight
		for v := 0; v < n; v++ {
			d := o.Query(int32(src), int32(v))
			if d >= Inf {
				continue
			}
			if d > ecc {
				ecc = d
			}
			sum += d
		}
		a.Eccentricity[src] = ecc
		parts[w].wiener += sum
	})
	for _, p := range parts {
		a.WienerIndex += p.wiener
	}
	a.WienerIndex /= 2 // each unordered pair counted twice

	first := true
	for v := 0; v < n; v++ {
		ecc := a.Eccentricity[v]
		if ecc == 0 && o.G.Degree(int32(v)) == 0 {
			continue // isolated
		}
		if first {
			a.Diameter, a.Radius = ecc, ecc
			first = false
		}
		if ecc > a.Diameter {
			a.Diameter = ecc
		}
		if ecc < a.Radius {
			a.Radius = ecc
		}
	}
	for v := 0; v < n; v++ {
		if a.Eccentricity[v] == a.Radius && !(a.Eccentricity[v] == 0 && o.G.Degree(int32(v)) == 0) {
			a.Center = append(a.Center, int32(v))
		}
	}
	// endpoints: any vertex at diameter eccentricity and its farthest mate
	for v := 0; v < n; v++ {
		if a.Eccentricity[v] == a.Diameter && a.Diameter > 0 {
			a.DiameterEndpoints[0] = int32(v)
			for u := 0; u < n; u++ {
				if d := o.Query(int32(v), int32(u)); d < Inf && d == a.Diameter {
					a.DiameterEndpoints[1] = int32(u)
					break
				}
			}
			break
		}
	}
	return a
}
