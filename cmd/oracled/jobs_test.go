package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/qe"
	"repro/internal/registry"
)

// jobsServer builds a single-graph server with the async tier enabled:
// the jobs manager resolves graphs through the same registry the
// interactive routes use. gate, when non-nil, is closed by the test to
// unblock the first Host acquisition — the hook for holding a job in the
// running state deterministically.
func jobsServer(t *testing.T, gate chan struct{}) (*server, *registry.Registry) {
	t.Helper()
	g := gen.PlanarEars(40, 3, gen.Config{MaxWeight: 9}, gen.NewRNG(11))
	oracle := apsp.NewOracle(g)
	reg := obs.NewRegistry()
	engine := qe.New(oracle, qe.Config{CacheRows: 64, MaxInflight: 8, QueueDepth: 64, Reg: reg})
	rg, err := registry.Open(registry.Config{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	rg.AddStatic(registry.DefaultGraph, oracle, engine)

	first := true
	jm, err := jobs.Open(jobs.Config{
		Dir: t.TempDir(),
		Host: func(ctx context.Context, name string) (jobs.GraphRef, error) {
			if gate != nil && first {
				first = false
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return rg.Acquire(ctx, name)
		},
		Known:       func(name string) bool { _, ok := rg.Info(name); return ok },
		Concurrency: 1, Workers: 2, ChunkSize: 8,
		Reg: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		jm.Close(ctx)
		cancel()
		rg.Close(context.Background())
	})
	return newServer(rg, nil, jm, reg), rg
}

func waitJobState(t *testing.T, ts *httptest.Server, id string, want string) map[string]interface{} {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON(t, ts, "/v1/jobs/"+id, 200)
		if st["state"] == want {
			return st
		}
		if s := st["state"].(string); s == "failed" || s == "cancelled" || s == "completed" {
			t.Fatalf("job %s reached %q (error %v) while waiting for %q", id, s, st["error"], want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return nil
}

// TestJobsHTTPLifecycle drives a batch_matrix job end to end over HTTP:
// 202 on submit, status polling to completion with a full progress
// fraction, NDJSON results matching the engine's answers, offset resume,
// the uniform list shape, and the job-aware error envelopes.
func TestJobsHTTPLifecycle(t *testing.T) {
	s, _ := jobsServer(t, nil)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"batch_matrix","sources":[0,1,2,3,4],"targets":[0,5,9]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]interface{}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := sub["id"].(string)
	if id == "" || sub["state"] == "" {
		t.Fatalf("submit body: %v", sub)
	}

	fin := waitJobState(t, ts, id, "completed")
	if fin["progress"].(float64) != 1 || fin["done"].(float64) != 5 || fin["rows"].(float64) != 5 {
		t.Fatalf("final status: %v", fin)
	}

	// Full results stream: 5 NDJSON rows, one per source, in order.
	rr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != 200 || rr.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("results: status %d, content-type %q", rr.StatusCode, rr.Header.Get("Content-Type"))
	}
	body, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	var lines []map[string]interface{}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		var row map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		lines = append(lines, row)
	}
	if len(lines) != 5 {
		t.Fatalf("%d result rows, want 5", len(lines))
	}
	for i, row := range lines {
		if int(row["i"].(float64)) != i || len(row["dist"].([]interface{})) != 3 {
			t.Fatalf("row %d: %v", i, row)
		}
	}

	// Byte-offset resume: presenting the full length yields an empty 200;
	// a mid-line offset is a 400 bad_request.
	if n := int64(fin["results_bytes"].(float64)); n != int64(len(body)) {
		t.Fatalf("results_bytes %d, body %d", n, len(body))
	}
	tail := fetch(t, ts, "/v1/jobs/"+id+"/results?offset="+itoa(len(body)))
	if tail.status != 200 || tail.body != "" {
		t.Fatalf("resume at end: status %d body %q", tail.status, tail.body)
	}
	if out := getJSON(t, ts, "/v1/jobs/"+id+"/results?offset=1", 400); out["code"] != "bad_request" {
		t.Fatalf("mid-line offset envelope: %v", out)
	}

	// Uniform collection shape.
	list := getJSON(t, ts, "/v1/jobs", 200)
	items := list["items"].([]interface{})
	if list["total"].(float64) != 1 || len(items) != 1 || items[0].(map[string]interface{})["id"] != id {
		t.Fatalf("jobs list: %v", list)
	}

	// Job-aware envelopes: unknown id carries job_not_found + job_id.
	for _, p := range []string{"/v1/jobs/nope", "/v1/jobs/nope/results"} {
		out := getJSON(t, ts, p, 404)
		if out["code"] != "job_not_found" || out["job_id"] != "nope" {
			t.Fatalf("%s envelope: %v", p, out)
		}
	}
	// Invalid specs are 400 bad_request.
	if out := postJSON(t, ts, "/v1/jobs", `{"kind":"nope"}`, 400); out["code"] != "bad_request" {
		t.Fatalf("bad kind envelope: %v", out)
	}
	if out := postJSON(t, ts, "/v1/jobs", `{"kind":"bc","graph":"ghost"}`, 400); out["code"] != "bad_request" {
		t.Fatalf("unknown graph envelope: %v", out)
	}
}

// TestJobsHTTPCancelGone: a queued job cancelled over HTTP answers 410
// job_cancelled on its results route; streaming a live job follows it to
// completion in one long response.
func TestJobsHTTPCancelGone(t *testing.T) {
	gate := make(chan struct{})
	s, _ := jobsServer(t, gate)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	// First job blocks in Host on the gate (running, no progress);
	// Concurrency 1 keeps the second queued.
	first := postJSON(t, ts, "/v1/jobs", `{"kind":"bc"}`, 202)
	second := postJSON(t, ts, "/v1/jobs", `{"kind":"bc","samples":4,"seed":7}`, 202)
	sid := second["id"].(string)

	// Cancel the pending job: DELETE answers its terminal status and is
	// idempotent.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sid, nil)
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]interface{}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != 200 || st["state"] != "cancelled" {
			t.Fatalf("cancel #%d: status %d, %v", i, resp.StatusCode, st)
		}
	}
	if out := getJSON(t, ts, "/v1/jobs/"+sid+"/results", 410); out["code"] != "job_cancelled" || out["job_id"] != sid {
		t.Fatalf("cancelled results envelope: %v", out)
	}

	// Open the results stream of the gated job before any results exist,
	// then release the gate: the one GET follows the job to completion.
	fid := first["id"].(string)
	done := make(chan []byte, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + fid + "/results")
		if err != nil {
			done <- nil
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- b
	}()
	time.Sleep(20 * time.Millisecond) // let the follower attach pre-gate
	close(gate)
	body := <-done
	if body == nil {
		t.Fatal("follower stream failed")
	}
	if n := strings.Count(string(body), "\n"); n != 40 {
		t.Fatalf("followed stream has %d rows, want 40", n)
	}
	fin := waitJobState(t, ts, fid, "completed")
	if fin["progress"].(float64) != 1 {
		t.Fatalf("gated job final: %v", fin)
	}
}

// TestJobsDisabled: without -jobs-dir every jobs route is 503 with the
// stable "unavailable" code, so clients can distinguish "tier off" from
// "job missing".
func TestJobsDisabled(t *testing.T) {
	s, _, _ := testServer(t)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	for _, p := range []string{"/v1/jobs", "/v1/jobs/j0000000001", "/v1/jobs/j0000000001/results"} {
		out := getJSON(t, ts, p, 503)
		if out["code"] != "unavailable" {
			t.Fatalf("%s envelope: %v", p, out)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
