package apsp

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

// triChain builds a chain of k triangles sharing articulation vertices:
// (0,1,2), (2,3,4), (4,5,6), ... Every block has ≤ 2 cut vertices.
func triChain(k int) *graph.Graph {
	b := graph.NewBuilder(2*k + 1)
	for i := 0; i < k; i++ {
		a := int32(2 * i)
		b.AddEdge(a, a+1, 1)
		b.AddEdge(a+1, a+2, 1)
		b.AddEdge(a, a+2, 1)
	}
	return b.Build()
}

// assertSameAnswers compares got against a freshly built oracle on want
// over every ordered pair of the larger vertex set.
func assertSameAnswers(t *testing.T, got *Oracle, want *graph.Graph) {
	t.Helper()
	ref := NewOracle(want)
	n := want.NumVertices()
	if got.G.NumVertices() != n {
		t.Fatalf("vertex count: got %d want %d", got.G.NumVertices(), n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			g, w := got.Query(int32(u), int32(v)), ref.Query(int32(u), int32(v))
			if g != w {
				t.Fatalf("d(%d,%d): got %v want %v", u, v, g, w)
			}
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestApplyDeltaWeightCheapPath(t *testing.T) {
	g := triChain(2) // blocks: (0,1,2) and (2,3,4), one articulation vertex 2
	o := NewOracle(g)
	before := o.Query(0, 4)

	ds := []Delta{{Kind: DeltaWeight, Edge: 0, W: 5}} // edge (0,1) in block 0
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuildFallback {
		t.Fatal("weight-only script took the rebuild fallback")
	}
	if res.TouchedBlocks != 1 || res.ReusedBlocks != 1 {
		t.Fatalf("touched/reused = %d/%d, want 1/1", res.TouchedBlocks, res.ReusedBlocks)
	}
	if res.APRebuilt {
		t.Fatal("AP table rebuilt for a single-cut block")
	}
	// The untouched block is carried over by reference, not recomputed.
	shared := false
	for _, ob := range o.Blocks {
		for _, nb := range n.Blocks {
			if ob == nb {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("no block shared by reference on the cheap path")
	}
	// One connected component: everything is stale.
	for v, s := range res.Stale {
		if !s {
			t.Fatalf("vertex %d not stale after in-component weight change", v)
		}
	}
	mutated, err := MutateGraph(g, ds)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, n, mutated)
	// The old oracle is untouched and still answers for the old graph.
	if got := o.Query(0, 4); got != before {
		t.Fatalf("old oracle changed: d(0,4) %v → %v", before, got)
	}
}

func TestApplyDeltaWeightRebuildsAPTable(t *testing.T) {
	g := triChain(3) // middle block (2,3,4) has two cut vertices (2 and 4)
	o := NewOracle(g)
	// Edge IDs 3,4,5 form the middle triangle; reweight one of them.
	ds := []Delta{{Kind: DeltaWeight, Edge: 4, W: 7}}
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.APRebuilt {
		t.Fatal("AP table not rebuilt after reweighting a two-cut block")
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaInsertMergesBlocks(t *testing.T) {
	g := triChain(3)
	o := NewOracle(g)
	// A chord across the first two triangles merges them into one block.
	ds := []Delta{{Kind: DeltaInsert, U: 0, V: 3, W: 1}}
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RebuildFallback {
		t.Fatal("insert did not take the rebuild fallback")
	}
	if res.ReusedBlocks == 0 {
		t.Fatal("far block not reused across a structural delta")
	}
	// The reused block shares its EarAPSP pointer with the old oracle.
	sharedEar := false
	for _, ob := range o.Blocks {
		for _, nb := range n.Blocks {
			if ob.Ear == nb.Ear {
				sharedEar = true
			}
		}
	}
	if !sharedEar {
		t.Fatal("no EarAPSP shared by reference on the structural path")
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaDeleteSplitsBlock(t *testing.T) {
	// A 6-cycle is one block; deleting one edge splits it into 5 bridge
	// blocks.
	b := graph.NewBuilder(6)
	for i := int32(0); i < 6; i++ {
		b.AddEdge(i, (i+1)%6, 1)
	}
	g := b.Build()
	o := NewOracle(g)
	ds := []Delta{{Kind: DeltaDelete, Edge: 2}}
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RebuildFallback || res.TouchedBlocks == 0 {
		t.Fatalf("delete: fallback=%v touched=%d", res.RebuildFallback, res.TouchedBlocks)
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaMultiComponentStaleness(t *testing.T) {
	// Two disjoint triangles; a delta in the first must not stale the
	// second, and the second component's block must be reused even on the
	// structural path.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(3, 5, 1)
	g := b.Build()
	o := NewOracle(g)

	ds := []Delta{{Kind: DeltaInsert, U: 0, V: 1, W: 3}} // parallel edge in comp 0
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if !res.Stale[v] {
			t.Fatalf("vertex %d in the touched component not stale", v)
		}
	}
	for v := 3; v < 6; v++ {
		if res.Stale[v] {
			t.Fatalf("vertex %d in the untouched component marked stale", v)
		}
	}
	if res.ReusedBlocks != 1 {
		t.Fatalf("untouched component's block not reused: reused=%d", res.ReusedBlocks)
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaInsertNewVertexAndIsolated(t *testing.T) {
	// Vertex 3 exists but is isolated; vertex 4 does not exist yet.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	g := b.Build()
	o := NewOracle(g)

	ds := []Delta{
		{Kind: DeltaInsert, U: 2, V: 3, W: 2}, // connect the isolated vertex
		{Kind: DeltaInsert, U: 3, V: 4, W: 2}, // grow the graph by one vertex
	}
	n, res, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 4 {
		t.Fatalf("stale sized %d for old n=4", len(res.Stale))
	}
	if !res.Stale[3] {
		t.Fatal("previously isolated endpoint not stale")
	}
	if got := n.Query(0, 4); got != 5 {
		t.Fatalf("d(0,4) = %v, want 5", got)
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaSequentialIDSemantics(t *testing.T) {
	// Delete shifts later IDs down; a following weight change must hit the
	// shifted edge. Start: edges 0:(0,1) 1:(1,2) 2:(0,2). Delete edge 0,
	// then reweight edge 1 — which is now the original (0,2).
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	g := b.Build()
	o := NewOracle(g)
	ds := []Delta{
		{Kind: DeltaDelete, Edge: 0},
		{Kind: DeltaWeight, Edge: 1, W: 9},
	}
	n, _, err := o.ApplyDelta(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Query(0, 2); got != 9 {
		t.Fatalf("d(0,2) = %v, want 9 (weight change must follow the ID shift)", got)
	}
	mutated, _ := MutateGraph(g, ds)
	assertSameAnswers(t, n, mutated)
}

func TestApplyDeltaRejectsBadScripts(t *testing.T) {
	g := triChain(1)
	o := NewOracle(g)
	before := o.Query(0, 2)
	bad := [][]Delta{
		{{Kind: DeltaWeight, Edge: 99, W: 1}},
		{{Kind: DeltaWeight, Edge: -1, W: 1}},
		{{Kind: DeltaWeight, Edge: 0, W: -1}},
		{{Kind: DeltaWeight, Edge: 0, W: math.NaN()}},
		{{Kind: DeltaWeight, Edge: 0, W: Inf}},
		{{Kind: DeltaInsert, U: -1, V: 0, W: 1}},
		{{Kind: DeltaInsert, U: 0, V: 9, W: 1}}, // beyond n+2 growth bound
		{{Kind: DeltaDelete, Edge: 3}},
		{{Kind: DeltaKind(7), Edge: 0}},
		// Valid prefix, invalid suffix: nothing may apply.
		{{Kind: DeltaWeight, Edge: 0, W: 2}, {Kind: DeltaDelete, Edge: 42}},
	}
	for i, ds := range bad {
		n, res, err := o.ApplyDelta(context.Background(), ds)
		if !errors.Is(err, ErrBadDelta) {
			t.Fatalf("script %d: err = %v, want ErrBadDelta", i, err)
		}
		if n != nil || res != nil {
			t.Fatalf("script %d: non-nil result on error", i)
		}
	}
	if got := o.Query(0, 2); got != before {
		t.Fatal("oracle changed by a rejected script")
	}
}

func TestApplyDeltaEmptyScriptAndCancellation(t *testing.T) {
	g := triChain(1)
	o := NewOracle(g)
	n, res, err := o.ApplyDelta(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TouchedBlocks != 0 || res.RebuildFallback {
		t.Fatalf("empty script did work: %+v", res)
	}
	assertSameAnswers(t, n, g)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := o.ApplyDelta(ctx, []Delta{{Kind: DeltaWeight, Edge: 0, W: 2}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled apply: err = %v", err)
	}
}

func TestMutateGraphSemantics(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.Build()
	m, err := MutateGraph(g, []Delta{
		{Kind: DeltaDelete, Edge: 0},
		{Kind: DeltaInsert, U: 0, V: 2, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", m.NumEdges())
	}
	if e := m.Edge(0); e.U != 1 || e.V != 2 || e.W != 2 {
		t.Fatalf("edge 0 = %+v after shift", e)
	}
	if e := m.Edge(1); e.U != 0 || e.V != 2 || e.W != 4 {
		t.Fatalf("edge 1 = %+v", e)
	}
	// The input graph is untouched.
	if g.NumEdges() != 2 || g.Edge(0).U != 0 {
		t.Fatal("MutateGraph mutated its input")
	}
}
