package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/snapshot"
)

// Binary snapshot format for large generated graphs: a fixed header plus
// the raw edge array, little-endian. Loading a snapshot skips both text
// parsing and generator re-execution, which matters when the benchmark
// harness replays the same dataset many times.
//
// Layout: magic "EARG" | uint32 version | uint64 n | uint64 m |
// m × (int32 u, int32 v, float64 w).

const (
	binaryMagic   = "EARG"
	binaryVersion = 1
)

// WriteBinary serialises g.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 4+4+8)
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserialises a snapshot written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: not a binary graph snapshot (magic %q)", magic)
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	if n > 1<<31 || m > 1<<31 {
		return nil, fmt.Errorf("graph: snapshot too large (n=%d m=%d)", n, m)
	}
	edges := make([]Edge, m)
	rec := make([]byte, 16)
	for i := range edges {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		u := int32(binary.LittleEndian.Uint32(rec[0:]))
		v := int32(binary.LittleEndian.Uint32(rec[4:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
		if u < 0 || uint64(u) >= n || v < 0 || uint64(v) >= n {
			return nil, fmt.Errorf("graph: edge %d endpoints out of range", i)
		}
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("graph: edge %d has invalid weight %v", i, w)
		}
		edges[i] = Edge{U: u, V: v, W: w}
	}
	return FromEdges(int(n), edges), nil
}

// EncodeSnapshot appends the graph to an oracle-snapshot section: vertex
// count, edge count, then the raw edge array. The CSR adjacency is not
// stored; FromEdges rebuilds it deterministically on decode.
func (g *Graph) EncodeSnapshot(e *snapshot.Encoder) {
	e.U64(uint64(g.n))
	e.U64(uint64(len(g.edges)))
	for _, ed := range g.edges {
		e.I32(ed.U)
		e.I32(ed.V)
		e.F64(ed.W)
	}
}

// DecodeSnapshot is EncodeSnapshot's inverse. It validates endpoint
// ranges and weights, so a decoded graph satisfies every invariant a
// Builder-built one does; failures wrap snapshot.ErrCorrupt.
func DecodeSnapshot(d *snapshot.Decoder) (*Graph, error) {
	n := d.U64()
	m := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, snapshot.Corruptf("graph: %d vertices", n)
	}
	if m > uint64(d.Remaining())/16 {
		return nil, snapshot.Corruptf("graph: %d edges in %d bytes", m, d.Remaining())
	}
	edges := make([]Edge, m)
	for i := range edges {
		u, v, w := d.I32(), d.I32(), d.F64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if u < 0 || uint64(u) >= n || v < 0 || uint64(v) >= n {
			return nil, snapshot.Corruptf("graph: edge %d endpoints (%d,%d) outside [0,%d)", i, u, v, n)
		}
		if w < 0 || math.IsNaN(w) {
			return nil, snapshot.Corruptf("graph: edge %d weight %v", i, w)
		}
		edges[i] = Edge{U: u, V: v, W: w}
	}
	return FromEdges(int(n), edges), nil
}

// SaveBinary and LoadBinary are file-path conveniences.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a snapshot file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
