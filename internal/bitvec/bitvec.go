// Package bitvec implements dense bit vectors over GF(2).
//
// The minimum cycle basis algorithm (Section 3 of the paper) represents both
// candidate cycles and De Pina witnesses S_i as incidence vectors on the
// non-tree edge set E'. The two hot operations are the inner product
// <C, S> (parity of the AND) used by the independence test, and the
// symmetric difference S_j ^= S_i used by the witness update. Both are
// word-parallel here, matching the paper's GPU block-reduction kernel in
// structure.
package bitvec

import "math/bits"

const wordBits = 64

// Vector is a fixed-length bit vector over GF(2).
type Vector struct {
	words []uint64
	n     int
}

// New returns a zero vector of n bits.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words; used by the simulated GPU kernel to split
// a reduction across thread blocks. Callers must not resize it.
func (v *Vector) Words() []uint64 { return v.words }

// Get reports bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to b.
func (v *Vector) Set(i int, b bool) {
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (v *Vector) Flip(i int) {
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Clear zeroes every bit, keeping the allocation.
func (v *Vector) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// CopyFrom overwrites v with src. Both must have the same length.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic("bitvec: CopyFrom length mismatch")
	}
	copy(v.words, src.words)
}

// Xor sets v = v XOR o (symmetric difference; the witness update
// S_j = S_j ⊕ S_i of Algorithm 2 step 6).
func (v *Vector) Xor(o *Vector) {
	if v.n != o.n {
		panic("bitvec: Xor length mismatch")
	}
	for i, w := range o.words {
		v.words[i] ^= w
	}
}

// Dot returns the GF(2) inner product <v, o>: the parity of the number of
// positions where both vectors are 1 (Algorithm 2 steps 3 and 5).
func (v *Vector) Dot(o *Vector) bool {
	if v.n != o.n {
		panic("bitvec: Dot length mismatch")
	}
	var acc uint64
	for i, w := range o.words {
		acc ^= v.words[i] & w
	}
	return bits.OnesCount64(acc)&1 == 1
}

// DotRange computes the partial inner product restricted to words
// [lo, hi); the simulated GPU witness kernel splits the reduction across
// blocks with this. The final parity is the XOR of the partial parities.
func (v *Vector) DotRange(o *Vector, lo, hi int) bool {
	var acc uint64
	for i := lo; i < hi; i++ {
		acc ^= v.words[i] & o.words[i]
	}
	return bits.OnesCount64(acc)&1 == 1
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsZero reports whether every bit is 0.
func (v *Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o hold identical bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range o.words {
		if v.words[i] != w {
			return false
		}
	}
	return true
}

// FirstOne returns the index of the lowest set bit, or -1 if the vector is
// zero. Gaussian elimination uses it as the pivot column.
func (v *Vector) FirstOne() int {
	for wi, w := range v.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Ones returns the indices of the set bits in increasing order.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.PopCount())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Rank performs Gaussian elimination over GF(2) on the given vectors and
// returns the rank of the set. The inputs are not modified. It is used by
// tests to verify that a computed cycle basis is linearly independent.
func Rank(vs []*Vector) int {
	if len(vs) == 0 {
		return 0
	}
	rows := make([]*Vector, len(vs))
	for i, v := range vs {
		rows[i] = v.Clone()
	}
	rank := 0
	n := rows[0].n
	for col := 0; col < n && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r].Get(col) {
				rows[r].Xor(rows[rank])
			}
		}
		rank++
	}
	return rank
}
