package check

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qe"
	"repro/internal/shard"
)

// shardCluster is an in-process serving cluster carved from one oracle:
// one httptest daemon per shard plus the frontend's fan-out source, the
// whole sharded serving path exercised over real HTTP.
type shardCluster struct {
	plan    *shard.Plan
	servers []*httptest.Server
	src     *shard.RemoteSource
}

func (c *shardCluster) close() {
	if c.src != nil {
		c.src.Close()
	}
	for _, ts := range c.servers {
		if ts != nil {
			ts.Close()
		}
	}
}

// newShardCluster plans o into the given shard count and boots the
// cluster, round-tripping the manifest and every shard snapshot through
// their wire encodings so the test covers what production loads, not
// in-memory shortcuts.
func newShardCluster(o *apsp.Oracle, shards int) (*shardCluster, error) {
	p, err := shard.PlanShards(o, shard.PlanOptions{Shards: shards})
	if err != nil {
		return nil, err
	}
	var mbuf bytes.Buffer
	if _, err := p.WriteTo(&mbuf); err != nil {
		return nil, err
	}
	if p, err = shard.ReadPlan(bytes.NewReader(mbuf.Bytes())); err != nil {
		return nil, err
	}
	c := &shardCluster{plan: p}
	addrs := make([]string, p.NumShards)
	for s := int32(0); s < p.NumShards; s++ {
		var buf bytes.Buffer
		meta := apsp.ShardMeta{Epoch: p.Epoch, Shard: s, NumShards: p.NumShards}
		if _, err := o.WriteShardSnapshot(&buf, meta, p.OwnedMask(s)); err != nil {
			c.close()
			return nil, err
		}
		sb, err := apsp.ReadShardSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			c.close()
			return nil, err
		}
		mux := http.NewServeMux()
		shard.NewHandler(sb).Register(mux)
		ts := httptest.NewServer(mux)
		c.servers = append(c.servers, ts)
		addrs[s] = ts.URL
	}
	c.src, err = shard.NewRemoteSource(shard.SourceConfig{
		Plan: p, Addrs: addrs, MaxRetries: -1, Reg: obs.NewRegistry(),
	})
	if err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// ShardEquivalence asserts that a sharded frontend answers Query and
// Batch byte-identically to a monolith engine over the same graph: it
// builds one oracle, carves it into the given shard count behind real
// HTTP shard daemons, runs the full n×n distance matrix plus point
// queries through both qe.Engine stacks, and compares every float
// bit-for-bit (Inf included). A nil return means no pair diverged.
func ShardEquivalence(g *graph.Graph, shards int) error {
	n := g.NumVertices()
	o := apsp.NewOracle(g)
	c, err := newShardCluster(o, shards)
	if err != nil {
		return err
	}
	defer c.close()

	ctx := context.Background()
	mono := qe.New(o, qe.Config{CacheRows: 64, Reg: obs.NewRegistry()})
	front := qe.New(c.src, qe.Config{CacheRows: 64, Reg: obs.NewRegistry()})
	defer mono.Close(ctx)
	defer front.Close(ctx)
	if n == 0 {
		return nil
	}

	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	want, err := mono.Batch(ctx, verts, verts)
	if err != nil {
		return fmt.Errorf("monolith batch: %w", err)
	}
	got, err := front.Batch(ctx, verts, verts)
	if err != nil {
		return fmt.Errorf("sharded batch (%d shards): %w", shards, err)
	}
	for u := range want {
		for v := range want[u] {
			if math.Float64bits(float64(got[u][v])) != math.Float64bits(float64(want[u][v])) {
				return fmt.Errorf("sharded batch (%d shards) diverges at (%d,%d): %v, monolith %v",
					shards, u, v, got[u][v], want[u][v])
			}
		}
	}
	// Point queries go through the row-cache path the batch above warmed
	// plus a couple of cold pairs; same bit-identity contract.
	for _, uv := range [][2]int32{{0, int32(n - 1)}, {int32(n / 2), 0}, {int32(n - 1), int32(n / 2)}} {
		dm, err := mono.Query(ctx, uv[0], uv[1])
		if err != nil {
			return fmt.Errorf("monolith query(%d,%d): %w", uv[0], uv[1], err)
		}
		ds, err := front.Query(ctx, uv[0], uv[1])
		if err != nil {
			return fmt.Errorf("sharded query(%d,%d): %w", uv[0], uv[1], err)
		}
		if math.Float64bits(float64(dm)) != math.Float64bits(float64(ds)) {
			return fmt.Errorf("sharded query (%d shards) diverges at (%d,%d): %v, monolith %v",
				shards, uv[0], uv[1], ds, dm)
		}
	}
	return nil
}
