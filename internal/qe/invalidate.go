package qe

// SwapSource atomically replaces the engine's row source and evicts every
// cached row whose source is marked stale. It is the serving-side half of
// apsp's incremental delta machinery: ApplyDelta returns a new oracle plus
// a stale-vertex mask (every source in an old connected component touched
// by the script), and SwapSource installs the oracle while dropping
// exactly those rows — untouched components keep serving cache hits.
//
// stale is indexed by the OLD source's vertex IDs; a nil or short mask
// treats unlisted sources as fresh. The new source must not have fewer
// vertices than the old one (delta semantics only grow the vertex set).
//
// Concurrency: the swap and the in-flight epoch bump share the engine
// lock, so a row build that raced the swap is either cached before it
// (and evicted here) or rejected by its stale epoch — a row visible in
// the cache after SwapSource returns is computed entirely against one
// source, never a mix. In-flight queries that already hold an old row
// return its (consistently old) answers; subsequent queries see the new
// source. Evicted rows are accounted in qe.cache.evictions; the count of
// rows dropped by this call is returned.
func (e *Engine) SwapSource(src RowSource, stale []bool) int {
	e.mu.Lock()
	e.src = src
	e.n = src.NumVertices()
	e.epoch++
	e.mu.Unlock()
	if e.cache == nil {
		return 0
	}
	return e.cache.removeIf(func(s int32) bool {
		return int(s) < len(stale) && stale[s]
	})
}
