package hetero

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTracedMatchesRun(t *testing.T) {
	units := make([]Unit, 120)
	for i := range units {
		units[i] = Unit{ID: int32(i), Size: int64(1 + i%9)}
	}
	devices := []*Device{MulticoreCPU(), TeslaK40c()}
	exec := func(u Unit, d *Device) Cost { return Cost{Ops: u.Size * 5000, Launches: 1} }
	plain := Run(units, devices, exec)
	traced := RunTraced(units, devices, exec)
	if traced.Schedule.Makespan != plain.Makespan {
		t.Fatalf("traced makespan %v != %v", traced.Schedule.Makespan, plain.Makespan)
	}
	if traced.Schedule.TotalOps != plain.TotalOps {
		t.Fatal("ops differ")
	}
	// events cover every unit
	total := 0
	for _, e := range traced.Events {
		total += e.Units
		if e.End < e.Start {
			t.Fatal("negative event duration")
		}
	}
	if total != len(units) {
		t.Fatalf("events cover %d units", total)
	}
	// events on a slot never overlap
	type key struct {
		dev  string
		slot int
	}
	last := map[key]float64{}
	for _, e := range traced.Events {
		k := key{e.Device, e.Slot}
		if e.Start < last[k]-1e-12 {
			t.Fatalf("overlapping events on %v", k)
		}
		last[k] = e.End
	}
}

func TestGanttRendering(t *testing.T) {
	units := make([]Unit, 40)
	for i := range units {
		units[i] = Unit{ID: int32(i), Size: 3}
	}
	devices := []*Device{SequentialCPU(), TeslaK40c()}
	tr := RunTraced(units, devices, func(u Unit, d *Device) Cost {
		return Cost{Ops: 1e5, Launches: 1}
	})
	var buf bytes.Buffer
	if err := tr.WriteGantt(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "makespan") {
		t.Fatalf("gantt output malformed:\n%s", out)
	}
	util := tr.Utilization(devices)
	for name, u := range util {
		if u < 0 || u > 1.000001 {
			t.Fatalf("utilization of %s out of range: %v", name, u)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := RunTraced(nil, []*Device{SequentialCPU()}, func(u Unit, d *Device) Cost { return Cost{} })
	var buf bytes.Buffer
	if err := tr.WriteGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty schedule not reported")
	}
}
