package hetero

import "testing"

// Edge-case tests for the work deque, complementing the property and
// concurrency tests in hetero_test.go.

func TestDequeEmpty(t *testing.T) {
	for _, d := range []*Deque{NewDeque(nil), NewDeque([]Unit{})} {
		if d.Remaining() != 0 {
			t.Fatalf("empty deque remaining %d", d.Remaining())
		}
		if got := d.PopSmall(1); got != nil {
			t.Fatalf("PopSmall on empty returned %v", got)
		}
		if got := d.PopBig(1); got != nil {
			t.Fatalf("PopBig on empty returned %v", got)
		}
		// repeated pops must stay nil, not panic or go negative
		if d.PopSmall(100) != nil || d.PopBig(100) != nil || d.Remaining() != 0 {
			t.Fatal("empty deque unstable under repeated pops")
		}
	}
}

func TestDequePopSmallOversizedBatch(t *testing.T) {
	d := NewDeque([]Unit{{ID: 0, Size: 2}, {ID: 1, Size: 1}, {ID: 2, Size: 3}})
	got := d.PopSmall(10)
	if len(got) != 3 {
		t.Fatalf("oversized PopSmall returned %d units, want all 3", len(got))
	}
	if got[0].Size != 1 || got[1].Size != 2 || got[2].Size != 3 {
		t.Fatalf("units not sorted ascending: %+v", got)
	}
	if d.Remaining() != 0 || d.PopSmall(1) != nil {
		t.Fatal("deque not fully drained")
	}
}

func TestDequePopBigOversizedBatch(t *testing.T) {
	d := NewDeque([]Unit{{ID: 0, Size: 2}, {ID: 1, Size: 1}, {ID: 2, Size: 3}})
	got := d.PopBig(10)
	if len(got) != 3 {
		t.Fatalf("oversized PopBig returned %d units, want all 3", len(got))
	}
	// PopBig returns the tail slice, still in ascending order
	if got[len(got)-1].Size != 3 {
		t.Fatalf("big end missing largest unit: %+v", got)
	}
	if d.Remaining() != 0 || d.PopBig(1) != nil {
		t.Fatal("deque not fully drained")
	}
}

func TestDequeInterleavedDrainToZero(t *testing.T) {
	n := 25
	units := make([]Unit, n)
	for i := range units {
		units[i] = Unit{ID: int32(i), Size: int64(i)}
	}
	d := NewDeque(units)
	seen := make(map[int32]bool)
	small := true
	for d.Remaining() > 0 {
		var batch []Unit
		if small {
			batch = d.PopSmall(2)
		} else {
			batch = d.PopBig(3)
		}
		small = !small
		if len(batch) == 0 {
			t.Fatal("pop returned nothing while units remained")
		}
		for _, u := range batch {
			if seen[u.ID] {
				t.Fatalf("unit %d delivered twice", u.ID)
			}
			seen[u.ID] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("drained %d of %d units", len(seen), n)
	}
	if d.PopSmall(1) != nil || d.PopBig(1) != nil || d.Remaining() != 0 {
		t.Fatal("deque not stable after drain")
	}
}

func TestDequeSingleUnitBothEnds(t *testing.T) {
	d := NewDeque([]Unit{{ID: 7, Size: 42}})
	if got := d.PopBig(1); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("single unit not served from big end: %+v", got)
	}
	if d.PopSmall(1) != nil {
		t.Fatal("small end served an already-claimed unit")
	}
}
