package graph

import (
	"bytes"
	"strings"
	"testing"
)

func edgeListsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := int32(0); i < int32(a.NumEdges()); i++ {
		if a.Edge(i) != b.Edge(i) {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTripCases(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"empty", 0, nil},
		{"isolated-only", 4, nil},
		{"triangle", 3, []Edge{{0, 1, 1}, {1, 2, 2.5}, {2, 0, 0.125}}},
		{"self-loop", 2, []Edge{{0, 0, 3}, {0, 1, 1}}},
		{"parallel", 2, []Edge{{0, 1, 1}, {0, 1, 7}, {1, 0, 2}}},
		// the asymmetry this test pinned down: trailing isolated vertices
		// must survive via the "# vertices N edges M" header
		{"trailing-isolated", 6, []Edge{{0, 1, 1}, {1, 2, 4}}},
		{"fractional-weights", 3, []Edge{{0, 1, 0.1}, {1, 2, 1e-9}, {0, 2, 123456.789}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := FromEdges(tc.n, tc.edges)
			var buf bytes.Buffer
			if err := WriteEdgeList(&buf, g); err != nil {
				t.Fatalf("write: %v", err)
			}
			h, err := ReadEdgeList(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !edgeListsEqual(g, h) {
				t.Fatalf("round trip mismatch: wrote n=%d m=%d, read n=%d m=%d",
					g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
			}
		})
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := strings.Join([]string{
		"# a leading comment",
		"",
		"0 1 2.5",
		"   ",
		"% percent comments too",
		"1 2", // missing weight defaults to 1
		"# trailing comment",
	}, "\n")
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got n=%d m=%d, want n=3 m=2", g.NumVertices(), g.NumEdges())
	}
	if e := g.Edge(1); e.W != 1 {
		t.Fatalf("default weight %v, want 1", e.W)
	}
}

func TestReadEdgeListHeaderExtendsVertices(t *testing.T) {
	in := "# vertices 9 edges 1\n0 1 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumVertices() != 9 {
		t.Fatalf("header-declared vertices ignored: n=%d, want 9", g.NumVertices())
	}
}

func TestReadEdgeListHeaderNeverShrinks(t *testing.T) {
	// A stale header smaller than the actual endpoints must not truncate.
	in := "# vertices 2 edges 1\n0 5 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("n=%d, want 6 (max endpoint wins over smaller header)", g.NumVertices())
	}
}

func TestReadEdgeListMalformedInputs(t *testing.T) {
	for _, in := range []string{
		"0\n",        // too few fields
		"x 1 2\n",    // bad vertex
		"0 1 zzz\n",  // bad weight
		"-1 2 1.0\n", // negative vertex
	} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error, got none", in)
		}
	}
}
