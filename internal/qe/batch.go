package qe

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/hetero"
)

// Batch tuning: the CPU side of the work deque pops rows one at a time
// (good balance for skewed row costs), the big-batch side claims chunks
// so the largest rows are consumed in bulk first — the Section 2.3
// work-queue discipline with the engine's row builds as work-units.
const (
	cpuBatchRows = 1
	bigBatchRows = 8
)

// batchScratch is the pooled per-call working state of Batch: the dedup
// index and the distinct/first/missing/unit slices. Pooling it keeps the
// warm path's allocations down to the result matrix the caller receives
// (out + flat); everything else is reused across calls.
type batchScratch struct {
	index    ds.Index32
	distinct []int32 // distinct sources, first-seen order
	first    []int32 // per distinct: index in sources of its first occurrence
	missing  []int32 // distinct indices whose rows were not cached
	units    []hetero.Unit
}

func (s *batchScratch) reset() {
	s.index.Reset()
	s.distinct = s.distinct[:0]
	s.first = s.first[:0]
	s.missing = s.missing[:0]
	s.units = s.units[:0]
}

// Batch answers the many-to-many query set sources × targets: the result
// is len(sources) rows of len(targets) distances, where result[i][j] =
// d(sources[i], targets[j]) and unreachable pairs carry the Inf sentinel
// (test with Unreachable).
//
// The whole batch is one admitted request (one admission slot, one
// deadline); its result matrix is bounded by Config.MaxBatchPairs, and an
// over-cap request fails with ErrBatchTooLarge before anything is
// allocated. Cached rows are copied straight into the result under the
// cache's shard locks; only the rows actually missing are computed — at
// most once per distinct source — by scheduling each as a hetero.Unit on
// the double-ended work queue: a pool of workers drains the small end row
// by row while a big-batch drainer claims the largest rows in chunks.
// Concurrent point queries and other batches coalesce onto the same
// builds through the engine's singleflight layer. A batch whose rows are
// all cached allocates only the matrix it returns.
//
// On deadline expiry mid-batch the remaining rows are skipped and the
// context error is returned; no partial matrix is produced.
func (e *Engine) Batch(ctx context.Context, sources, targets []int32) ([][]graph.Weight, error) {
	nt := len(targets)
	out := make([][]graph.Weight, len(sources))
	flat := make([]graph.Weight, len(sources)*nt)
	if err := e.BatchFlat(ctx, sources, targets, flat); err != nil {
		return nil, err
	}
	for i := range sources {
		out[i] = flat[i*nt : (i+1)*nt]
	}
	return out, nil
}

// BatchFlat is Batch writing into a caller-provided row-major matrix:
// flat[i*len(targets)+j] = d(sources[i], targets[j]). len(flat) must be
// exactly len(sources)*len(targets). It exists for callers that page
// through a larger matrix in source chunks — the async job tier streams a
// full distance matrix by reusing one chunk-sized buffer across
// BatchFlat calls instead of allocating a fresh matrix per chunk.
// Admission, the pair cap, caching, dedup, and scheduling behave exactly
// as in Batch; on error the contents of flat are unspecified.
func (e *Engine) BatchFlat(ctx context.Context, sources, targets []int32, flat []graph.Weight) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(flat) != len(sources)*len(targets) {
		return fmt.Errorf("qe: batch matrix buffer holds %d weights, %d×%d batch needs %d",
			len(flat), len(sources), len(targets), len(sources)*len(targets))
	}
	e.mu.Lock()
	rs, n := e.src, e.n
	e.mu.Unlock()
	for _, u := range sources {
		if err := e.checkVertex("source", u, n); err != nil {
			return err
		}
	}
	for _, v := range targets {
		if err := e.checkVertex("target", v, n); err != nil {
			return err
		}
	}
	// The pair cap guards the result-matrix allocation in Batch; check it
	// before admission so an oversized request cannot occupy a slot. The
	// division form cannot overflow, unlike the product.
	if e.maxPairs >= 0 && len(sources) > 0 && len(targets) > 0 &&
		int64(len(sources)) > e.maxPairs/int64(len(targets)) {
		return fmt.Errorf("qe: batch %d×%d exceeds %d pairs: %w",
			len(sources), len(targets), e.maxPairs, ErrBatchTooLarge)
	}
	ctx, cancel := e.withDeadline(ctx)
	defer cancel()
	if err := e.adm.acquire(ctx); err != nil {
		return err
	}
	defer e.adm.release()

	sc := e.scratch.Get().(*batchScratch)
	sc.reset()
	defer e.scratch.Put(sc)

	// Distinct sources, preserving first-seen order; each distinct source
	// owns the flat-matrix row of its first occurrence, so the build and
	// gather stages write disjoint memory with no further coordination.
	for i, u := range sources {
		if _, seen := sc.index.GetOrPut(u, int32(len(sc.distinct))); !seen {
			sc.distinct = append(sc.distinct, u)
			sc.first = append(sc.first, int32(i))
		}
	}
	e.batchSources.Add(int64(len(sc.distinct)))
	e.batchPairs.Add(int64(len(sources)) * int64(len(targets)))

	nt := len(targets)
	if nt > 0 {
		// Warm pass: copy every cached row into its first-occurrence slot
		// under the cache's shard lock; collect the rest as misses.
		for di, u := range sc.distinct {
			dst := flat[int(sc.first[di])*nt : (int(sc.first[di])+1)*nt]
			if e.cache != nil && e.cache.gather(u, targets, dst) {
				continue
			}
			sc.missing = append(sc.missing, int32(di))
		}
	}

	if len(sc.missing) > 0 {
		sizer, hasSizer := rs.(Sizer)
		for _, di := range sc.missing {
			size := int64(n)
			if hasSizer {
				size = sizer.RowCost(sc.distinct[di])
			}
			sc.units = append(sc.units, hetero.Unit{ID: di, Size: size})
		}
		workers := e.workers
		if workers > len(sc.units) {
			workers = len(sc.units)
		}
		if workers < 1 {
			workers = 1
		}
		// One failed row build fails the whole batch: a partial matrix is
		// indistinguishable from a complete one, so a fan-out source's
		// shard outage must surface as an error, never as Inf-padded rows.
		var failMu sync.Mutex
		var failed error
		exec := func(unit hetero.Unit) {
			if ctx.Err() != nil {
				return // deadline passed: skip remaining rows
			}
			failMu.Lock()
			bail := failed != nil
			failMu.Unlock()
			if bail {
				return // a row already failed: skip remaining rows
			}
			di := int(unit.ID)
			buf, err := e.rowRef(ctx, sc.distinct[di])
			if err != nil {
				failMu.Lock()
				if failed == nil {
					failed = err
				}
				failMu.Unlock()
				return
			}
			dst := flat[int(sc.first[di])*nt : (int(sc.first[di])+1)*nt]
			row := buf.data
			for j, v := range targets {
				// A row served from an older epoch can be shorter than the
				// validated target range (see Query); out-of-range means
				// unreachable in that row's view of the graph.
				if int(v) < len(row) {
					dst[j] = row[v]
				} else {
					dst[j] = inf
				}
			}
			e.arena.release(buf)
		}
		hetero.HybridRun(sc.units, workers, cpuBatchRows, bigBatchRows, exec, exec)
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("qe: batch abandoned: %w", err)
		}
		if failed != nil {
			return fmt.Errorf("qe: batch row build failed: %w", failed)
		}
	}

	// Assembly: duplicate sources copy their distinct row's slot.
	for i, u := range sources {
		di, _ := sc.index.Get(u)
		if fi := int(sc.first[di]); fi != i {
			copy(flat[i*nt:(i+1)*nt], flat[fi*nt:(fi+1)*nt])
		}
	}
	return nil
}
