package ds

// Index32 is a flat open-addressing hash map from non-negative int32 keys
// to int32 values, built for hot paths that must not allocate at steady
// state: the backing arrays are plain slices (struct-of-arrays, no
// per-entry boxing), lookups are branch-light linear probes, and Reset
// clears the map in O(1) by bumping a generation stamp instead of zeroing
// memory — so a pooled Index32 can be reused across requests for free.
//
// The zero value is empty and usable; the table grows by doubling when
// occupancy passes ¾. Index32 is not safe for concurrent use.
type Index32 struct {
	keys []int32
	vals []int32
	gen  []uint32 // slot is live iff gen[i] == cur
	cur  uint32
	n    int
	mask uint32
}

// index32MinCap is the smallest table allocated on first insert.
const index32MinCap = 16

// Len returns the number of live entries.
func (m *Index32) Len() int { return m.n }

// Reset empties the map without releasing or clearing its backing arrays.
func (m *Index32) Reset() {
	m.cur++
	m.n = 0
	if m.cur == 0 { // generation wrapped: stamps are ambiguous, clear once
		for i := range m.gen {
			m.gen[i] = 0
		}
		m.cur = 1
	}
}

// slot probes for key, returning the live slot holding it or, if absent,
// the first free slot on its probe path.
func (m *Index32) slot(key int32) (int, bool) {
	// Fibonacci hashing: one multiply spreads consecutive keys well.
	i := (uint32(key) * 2654435769) & m.mask
	for {
		if m.gen[i] != m.cur {
			return int(i), false
		}
		if m.keys[i] == key {
			return int(i), true
		}
		i = (i + 1) & m.mask
	}
}

// Get returns the value for key and whether it is present.
func (m *Index32) Get(key int32) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	i, ok := m.slot(key)
	if !ok {
		return 0, false
	}
	return m.vals[i], true
}

// Put inserts or overwrites key. Keys must be non-negative.
func (m *Index32) Put(key, val int32) {
	if len(m.keys) == 0 {
		m.grow(index32MinCap)
	} else if 4*(m.n+1) > 3*len(m.keys) {
		m.grow(2 * len(m.keys))
	}
	i, live := m.slot(key)
	m.keys[i] = key
	m.vals[i] = val
	m.gen[i] = m.cur
	if !live {
		m.n++
	}
}

// GetOrPut returns the existing value for key, or inserts val and reports
// that the key was absent — the one-probe idiom batch deduplication uses.
func (m *Index32) GetOrPut(key, val int32) (int32, bool) {
	if len(m.keys) == 0 || 4*(m.n+1) > 3*len(m.keys) {
		// Delegate growth to Put; the retry probe after growing is cheap.
		if v, ok := m.Get(key); ok {
			return v, true
		}
		m.Put(key, val)
		return val, false
	}
	i, live := m.slot(key)
	if live {
		return m.vals[i], true
	}
	m.keys[i] = key
	m.vals[i] = val
	m.gen[i] = m.cur
	m.n++
	return val, false
}

// grow rehashes into a table of the given power-of-two size.
func (m *Index32) grow(size int) {
	oldKeys, oldVals, oldGen, oldCur := m.keys, m.vals, m.gen, m.cur
	m.keys = make([]int32, size)
	m.vals = make([]int32, size)
	m.gen = make([]uint32, size)
	m.cur = 1
	m.mask = uint32(size - 1)
	m.n = 0
	for i := range oldKeys {
		if oldGen[i] == oldCur {
			j, _ := m.slot(oldKeys[i])
			m.keys[j] = oldKeys[i]
			m.vals[j] = oldVals[i]
			m.gen[j] = m.cur
			m.n++
		}
	}
}
