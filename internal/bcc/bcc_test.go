package bcc

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteForceArticulation marks v as an articulation point iff deleting it
// increases the number of connected components among the remaining
// vertices of its component.
func bruteForceArticulation(g *graph.Graph) []bool {
	n := g.NumVertices()
	out := make([]bool, n)
	baseLabels, _ := graph.ComponentLabels(g)
	compSize := map[int32]int{}
	for _, l := range baseLabels {
		compSize[l]++
	}
	for v := int32(0); v < int32(n); v++ {
		if compSize[baseLabels[v]] <= 1 {
			continue
		}
		// count components of G - v restricted to v's original component
		seen := make([]bool, n)
		seen[v] = true
		comps := 0
		for s := int32(0); s < int32(n); s++ {
			if seen[s] || baseLabels[s] != baseLabels[v] {
				continue
			}
			comps++
			stack := []int32{s}
			seen[s] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				g.Neighbors(x, func(u, eid int32) bool {
					if !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
					return true
				})
			}
		}
		if comps > 1 {
			out[v] = true
		}
	}
	return out
}

func testSuite() map[string]*graph.Graph {
	cfg := gen.Config{MaxWeight: 5}
	rng := gen.NewRNG(31)
	gs := map[string]*graph.Graph{
		"ring":     gen.Ring(9, cfg, rng),
		"grid":     gen.Grid(4, 4, cfg, rng),
		"gnm":      gen.GNM(25, 40, cfg, rng),
		"pendants": gen.AttachPendants(gen.Ring(6, cfg, rng), 8, 3, cfg, rng),
		"blocks": gen.ChainBlocks([]*graph.Graph{
			gen.Ring(5, cfg, rng), gen.Complete(4, cfg, rng), gen.Ring(4, cfg, rng),
		}, cfg, rng),
		"subdiv": gen.Subdivide(gen.GNM(12, 20, cfg, rng), 0.6, 2, cfg, rng),
	}
	// path: every edge its own BCC, interior vertices articulation
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	gs["path"] = b.Build()
	// self-loop + bridge
	b2 := graph.NewBuilder(3)
	b2.AddEdge(0, 0, 1)
	b2.AddEdge(0, 1, 1)
	b2.AddEdge(1, 2, 1)
	gs["loop-bridge"] = b2.Build()
	// parallel edges
	b3 := graph.NewBuilder(3)
	b3.AddEdge(0, 1, 1)
	b3.AddEdge(0, 1, 2)
	b3.AddEdge(1, 2, 1)
	gs["parallel"] = b3.Build()
	return gs
}

func TestComponentsPartitionEdges(t *testing.T) {
	for name, g := range testSuite() {
		d := Compute(g)
		seen := make([]int, g.NumEdges())
		for _, comp := range d.Components {
			if len(comp) == 0 {
				t.Fatalf("%s: empty component", name)
			}
			for _, e := range comp {
				seen[e]++
			}
		}
		for e, c := range seen {
			if c != 1 {
				t.Fatalf("%s: edge %d in %d components", name, e, c)
			}
		}
	}
}

func TestArticulationMatchesBruteForce(t *testing.T) {
	for name, g := range testSuite() {
		d := Compute(g)
		want := bruteForceArticulation(g)
		for v := range want {
			if d.IsArticulation[v] != want[v] {
				t.Fatalf("%s: articulation[%d] = %v, want %v", name, v, d.IsArticulation[v], want[v])
			}
		}
	}
}

func TestArticulationRandomized(t *testing.T) {
	cfg := gen.Config{MaxWeight: 3}
	for seed := uint64(0); seed < 20; seed++ {
		rng := gen.NewRNG(seed)
		g := gen.GNM(5+rng.Intn(25), 5+rng.Intn(50), cfg, rng)
		if rng.Float64() < 0.5 {
			g = gen.AttachPendants(g, rng.Intn(10), 2, cfg, rng)
		}
		d := Compute(g)
		want := bruteForceArticulation(g)
		for v := range want {
			if d.IsArticulation[v] != want[v] {
				t.Fatalf("seed %d: articulation[%d] mismatch", seed, v)
			}
		}
	}
}

func TestKnownDecompositions(t *testing.T) {
	gs := testSuite()
	// ring: one component, no articulation
	d := Compute(gs["ring"])
	if len(d.Components) != 1 || len(d.ArticulationPoints()) != 0 {
		t.Fatalf("ring: %d comps, %d APs", len(d.Components), len(d.ArticulationPoints()))
	}
	// path: 4 single-edge components, 3 APs
	d = Compute(gs["path"])
	if len(d.Components) != 4 || len(d.ArticulationPoints()) != 3 {
		t.Fatalf("path: %d comps, %d APs", len(d.Components), len(d.ArticulationPoints()))
	}
	// three chained blocks share two articulation points
	d = Compute(gs["blocks"])
	if len(d.Components) != 3 || len(d.ArticulationPoints()) != 2 {
		t.Fatalf("blocks: %d comps, %d APs", len(d.Components), len(d.ArticulationPoints()))
	}
	// parallel edges form one biconnected pair plus the bridge
	d = Compute(gs["parallel"])
	if len(d.Components) != 2 {
		t.Fatalf("parallel: %d comps", len(d.Components))
	}
	// self-loop is its own singleton component and creates no AP by itself
	d = Compute(gs["loop-bridge"])
	if len(d.Components) != 3 {
		t.Fatalf("loop-bridge: %d comps", len(d.Components))
	}
	if !d.IsArticulation[1] || d.IsArticulation[0] && false {
		t.Fatalf("loop-bridge articulation wrong: %v", d.IsArticulation)
	}
}

func TestLargestComponentEdgeShare(t *testing.T) {
	g := testSuite()["blocks"]
	d := Compute(g)
	share := d.LargestComponentEdgeShare(g.NumEdges())
	if share <= 0 || share > 1 {
		t.Fatalf("share %v", share)
	}
	if d.LargestComponentEdgeShare(0) != 0 {
		t.Fatal("zero-edge share should be 0")
	}
}

func TestBlockCutTree(t *testing.T) {
	for name, g := range testSuite() {
		d := Compute(g)
		bct := BuildBlockCutTree(g, d)
		if !bct.IsTree() {
			t.Fatalf("%s: block-cut incidence is not a forest", name)
		}
		if bct.NumBlocks() != len(d.Components) {
			t.Fatalf("%s: block count mismatch", name)
		}
		// every non-isolated vertex has a primary block
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if g.Degree(v) > 0 && bct.BlockOf[v] < 0 {
				t.Fatalf("%s: vertex %d has no block", name, v)
			}
		}
		// cut vertex indices are consistent
		for ci, v := range bct.CutVertices {
			if bct.CutIndex[v] != int32(ci) {
				t.Fatalf("%s: cut index inconsistent", name)
			}
			if len(bct.CutBlocks[ci]) < 2 {
				t.Fatalf("%s: articulation point %d in %d blocks", name, v, len(bct.CutBlocks[ci]))
			}
		}
	}
}

func TestBlockOfPrefersRealBlocks(t *testing.T) {
	// self-loop listed before the bridge: BlockOf must still choose the
	// bridge block for vertex 0
	b := graph.NewBuilder(2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	d := Compute(g)
	bct := BuildBlockCutTree(g, d)
	blk := bct.BlockOf[0]
	comp := d.Components[blk]
	if len(comp) == 1 && g.Edge(comp[0]).U == g.Edge(comp[0]).V {
		t.Fatal("BlockOf picked the self-loop block")
	}
}

func TestPeelPendants(t *testing.T) {
	cfg := gen.Config{MaxWeight: 4}
	rng := gen.NewRNG(41)
	base := gen.Ring(8, cfg, rng)
	g := gen.AttachPendants(base, 12, 4, cfg, rng)
	order, alive := PeelPendants(g)
	if len(order) != 12 {
		t.Fatalf("peeled %d, want 12", len(order))
	}
	for v := 0; v < 8; v++ {
		if !alive[v] {
			t.Fatalf("core vertex %d peeled", v)
		}
	}
	for v := 8; v < g.NumVertices(); v++ {
		if alive[v] {
			t.Fatalf("pendant vertex %d survived", v)
		}
	}
	// a pure path peels down to exactly one vertex: the last survivor has
	// degree 0 and no anchor to hang from
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	order2, alive2 := PeelPendants(b.Build())
	survivors := 0
	for _, a := range alive2 {
		if a {
			survivors++
		}
	}
	if survivors != 1 || len(order2) != 4 {
		t.Fatalf("path peel: %d survivors, %d peeled", survivors, len(order2))
	}
}
