package datasets

import (
	"testing"

	"repro/internal/apsp"
	"repro/internal/graph"
)

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range Table1 {
		g := spec.Generate(0.02, 1)
		if g.NumVertices() < 50 {
			t.Fatalf("%s: too few vertices %d", spec.Name, g.NumVertices())
		}
		st := graph.ComputeStats(g)
		if !st.IsConnected {
			t.Fatalf("%s: generated graph is disconnected (%d components)", spec.Name, st.Components)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, err := ByName("ca-AstroPh")
	if err != nil {
		t.Fatal(err)
	}
	g1 := s.Generate(0.02, 7)
	g2 := s.Generate(0.02, 7)
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different sizes")
	}
	for i, e := range g1.Edges() {
		e2 := g2.Edge(int32(i))
		if e != e2 {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e, e2)
		}
	}
	g3 := s.Generate(0.02, 8)
	if g3.NumEdges() == g1.NumEdges() {
		// sizes may coincide, compare content
		same := true
		for i, e := range g1.Edges() {
			if g3.Edge(int32(i)) != e {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical graphs")
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("no-such-dataset"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	names := Names()
	if len(names) != 15 {
		t.Fatalf("expected 15 datasets, got %d", len(names))
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
}

// TestRemovedFractionTracksPaper verifies the headline structural property:
// datasets with a high published "Nodes Removed" percentage must produce
// graphs in which the ear reduction removes a correspondingly high
// fraction, and low-removal datasets must stay low.
func TestRemovedFractionTracksPaper(t *testing.T) {
	for _, name := range []string{"as-22july06", "c-50", "delaunay_n15", "nopoly", "Wordnet3"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Generate(0.03, 11)
		o := apsp.NewOracle(g)
		gotPct := 100 * float64(o.NodesRemoved()) / float64(g.NumVertices())
		want := spec.PaperRemovedPct
		// within 20 percentage points, and ordering preserved for the
		// extremes
		if want >= 50 && gotPct < 30 {
			t.Errorf("%s: paper removes %.1f%%, we remove only %.1f%%", name, want, gotPct)
		}
		if want <= 2 && gotPct > 15 {
			t.Errorf("%s: paper removes %.1f%%, we remove %.1f%%", name, want, gotPct)
		}
	}
}
