package bc

import (
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hetero"
)

// Sampled estimates betweenness centrality from k uniformly sampled
// Brandes sources (Brandes & Pich): each source's dependencies are scaled
// by n/k, giving an unbiased estimator whose error vanishes as k → n.
// For k ≥ n the exact computation is performed instead.
//
// Sampling composes with everything else in this package — the sampled
// sources are ordinary work-units, so large graphs can trade accuracy for
// a k/n fraction of the full cost while keeping the parallel structure.
func Sampled(g *graph.Graph, k int, seed uint64, workers int) *Result {
	n := g.NumVertices()
	if k >= n {
		return Parallel(g, workers)
	}
	if k < 1 {
		k = 1
	}
	if workers < 1 {
		workers = 1
	}
	rng := gen.NewRNG(seed)
	perm := rng.Perm(n)
	sources := perm[:k]

	states := make([]*state, workers)
	accs := make([][]float64, workers)
	relax := make([]int64, workers)
	for w := range states {
		states[w] = newState(n)
		accs[w] = make([]float64, n)
	}
	hetero.ParallelFor(workers, k, func(w, i int) {
		relax[w] += states[w].source(g, sources[i], accs[w])
	})
	scale := float64(n) / float64(k)
	res := &Result{Scores: make([]float64, n)}
	for w := range accs {
		for v, x := range accs[w] {
			res.Scores[v] += x * scale
		}
		res.Relaxations += relax[w]
	}
	return res
}
