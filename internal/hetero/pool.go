package hetero

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// This file provides real goroutine-based parallel execution, used when the
// host actually has multiple cores. The benchmark harness reports both this
// wall-clock path and the virtual-clock path of schedule.go.

// Workers returns a sensible worker count: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// ParallelFor executes fn(i) for i in [0,n) across the given number of
// workers using a dynamic counter (small grain, good balance for skewed
// per-iteration work like per-source Dijkstra).
func ParallelFor(workers, n int, fn func(worker, i int)) {
	ParallelForCtx(context.Background(), workers, n, fn)
}

// ParallelForCtx is ParallelFor with cooperative cancellation: no new index
// is claimed once ctx is done, in-flight iterations finish, and the context
// error (if any) is returned. Iterations that never ran leave their outputs
// untouched, so callers must treat a non-nil error as "results invalid".
// With a background context it behaves exactly like ParallelFor and returns
// nil, so the cancellation check costs one channel poll per claimed index.
func ParallelForCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	done := ctx.Done()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(0, i)
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// HybridRun drains the deque with cpuWorkers goroutines popping small
// batches and one proxy goroutine popping big batches (standing in for the
// GPU stream). execCPU and execBig run the CPU-structured and
// GPU-structured kernels for one unit respectively. This is the wall-clock
// analogue of Run; it returns per-side unit counts.
func HybridRun(units []Unit, cpuWorkers, cpuBatch, bigBatch int, execCPU, execBig func(u Unit)) (cpuUnits, bigUnits int) {
	d := NewDeque(units)
	if cpuWorkers < 1 {
		cpuWorkers = 1
	}
	if cpuBatch < 1 {
		cpuBatch = 1
	}
	if bigBatch < 1 {
		bigBatch = 1
	}
	var cpuCount, bigCount int64
	var wg sync.WaitGroup
	wg.Add(cpuWorkers + 1)
	for w := 0; w < cpuWorkers; w++ {
		go func() {
			defer wg.Done()
			for {
				batch := d.PopSmall(cpuBatch)
				if len(batch) == 0 {
					return
				}
				for _, u := range batch {
					execCPU(u)
				}
				atomic.AddInt64(&cpuCount, int64(len(batch)))
			}
		}()
	}
	go func() {
		defer wg.Done()
		for {
			batch := d.PopBig(bigBatch)
			if len(batch) == 0 {
				return
			}
			for _, u := range batch {
				execBig(u)
			}
			atomic.AddInt64(&bigCount, int64(len(batch)))
		}
	}()
	wg.Wait()
	// Mirror Run's accounting so hybrid (wall-clock) executions show up in
	// the same process-wide metrics as virtual-clock schedules.
	obs.Default.Counter("hetero.hybrid.runs").Inc()
	obs.Default.Counter("hetero.hybrid.units.cpu").Add(cpuCount)
	obs.Default.Counter("hetero.hybrid.units.big").Add(bigCount)
	return int(cpuCount), int(bigCount)
}
