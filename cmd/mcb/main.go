// Command mcb computes a minimum weight cycle basis of a graph file or a
// named synthetic dataset using the ear-decomposition De Pina algorithm.
//
//	mcb -file molecule.txt -print 5
//	mcb -dataset c-50 -scale 0.02 -platform cpu+gpu -no-ear
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/hetero"
	"repro/internal/mcb"
	"repro/internal/verify"
)

func main() {
	var (
		file     = flag.String("file", "", "graph file (.mtx, .gr, or edge list)")
		dataset  = flag.String("dataset", "", "named synthetic dataset")
		scale    = flag.Float64("scale", 0.02, "dataset scale")
		seed     = flag.Uint64("seed", 1, "dataset seed")
		workers  = flag.Int("workers", hetero.Workers(), "parallel workers")
		noEar    = flag.Bool("no-ear", false, "disable the ear-decomposition reduction")
		platform = flag.String("platform", "sequential", "virtual platform: sequential, multicore, gpu, cpu+gpu")
		printN   = flag.Int("print", 0, "print the N lightest basis cycles")
		check    = flag.Bool("verify", false, "certify basis structure and cross-check the weight with Horton's algorithm")
	)
	cli.SetUsage("mcb", "[-file graph | -dataset name] [flags]")
	flag.Parse()

	var p mcb.Platform
	switch *platform {
	case "sequential":
		p = mcb.Sequential
	case "multicore":
		p = mcb.Multicore
	case "gpu":
		p = mcb.GPU
	case "cpu+gpu", "hetero":
		p = mcb.Heterogeneous
	default:
		cli.BadUsage("mcb", "unknown platform %q", *platform)
	}

	g, name, err := cli.LoadInput(*file, *dataset, *scale, *seed)
	if err != nil {
		cli.Exit("mcb", err)
	}
	fmt.Printf("graph %s: %d vertices, %d edges, cycle space dimension %d\n",
		name, g.NumVertices(), g.NumEdges(), mcb.Dim(g))

	// Ctrl-C during a long basis build aborts it instead of leaving the
	// process stuck until the compute finishes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := mcb.ComputeCtx(ctx, g, mcb.Options{
		UseEar:   !*noEar,
		Platform: p,
		Workers:  *workers,
		Seed:     *seed,
	})
	if err != nil {
		cli.Fatalf("mcb", "%v", err)
	}
	wall := time.Since(start)
	fmt.Printf("MCB: %d cycles, total weight %g\n", len(res.Cycles), res.TotalWeight)
	fmt.Printf("time: %v wall, %.4g virtual seconds on %s\n", wall, res.SimSeconds, p)
	fmt.Printf("phases (virtual): trees %.3g, labels %.3g, search %.3g, update %.3g\n",
		res.Phase.Tree, res.Phase.Label, res.Phase.Search, res.Phase.Update)
	fmt.Printf("roots %d, candidates %d (isometric filter pruned %d), nodes removed by ear reduction %d\n",
		res.NumRoots, res.NumCandidates, res.RejectedCandidates, res.NodesRemoved)

	if *check {
		if err := verify.CycleBasis(g, res); err != nil {
			cli.Fatalf("mcb", "VERIFICATION FAILED: %v", err)
		}
		horton := mcb.HortonMCB(g, false, *seed+7)
		if horton.TotalWeight != res.TotalWeight {
			cli.Fatalf("mcb", "VERIFICATION FAILED: Horton weight %g != De Pina weight %g",
				horton.TotalWeight, res.TotalWeight)
		}
		fmt.Println("verification: basis is independent, structurally valid, and Horton's algorithm agrees on the weight")
	}

	if *printN > 0 {
		// cycles are produced per phase in roughly increasing weight; sort
		// a copy for display
		cycles := append([]mcb.Cycle(nil), res.Cycles...)
		for i := 0; i < len(cycles); i++ {
			for j := i + 1; j < len(cycles); j++ {
				if cycles[j].Weight < cycles[i].Weight {
					cycles[i], cycles[j] = cycles[j], cycles[i]
				}
			}
			if i >= *printN {
				break
			}
		}
		n := *printN
		if n > len(cycles) {
			n = len(cycles)
		}
		for i := 0; i < n; i++ {
			c := cycles[i]
			fmt.Printf("  cycle %d: weight %g, %d edges:", i, c.Weight, len(c.Edges))
			for _, eid := range c.Edges {
				e := g.Edge(eid)
				fmt.Printf(" (%d-%d)", e.U, e.V)
			}
			fmt.Println()
		}
	}
}
