// Package hetero provides the heterogeneous execution substrate of the
// paper: the dynamic work-queue that balances work-units between a CPU and
// a GPU (Indarapu et al. [19], used in Sections 2.3 and 3.4), goroutine
// worker pools for real parallel execution, and — because this reproduction
// has no CUDA device — a calibrated virtual-time device model that accounts
// how long each work-unit would take on the paper's platform.
//
// The device model is the substitution documented in DESIGN.md: kernels are
// real Go code with the same algorithmic structure as the CUDA kernels
// (frontier relaxation, block-parallel reductions); only the clock is
// simulated. Work measures (edge relaxations, words XORed, sweeps) are
// counted during real execution and divided by device throughputs
// calibrated once against the paper's reported platform ratios.
package hetero

import "sync"

// Unit is one schedulable work-unit: an opaque index the caller interprets
// (a source vertex, a biconnected component, a witness range) plus a size
// estimate used for sorting.
type Unit struct {
	ID   int32
	Size int64
}

// Deque is the double-ended work queue of [19]: work-units are sorted by
// size, the GPU pops batches from the big end and the CPU from the small
// end, and the computation finishes when the queue is empty. All methods
// are safe for concurrent use.
type Deque struct {
	mu    sync.Mutex
	units []Unit
	head  int // next index for the small end
	tail  int // one past the last index for the big end
}

// NewDeque builds a queue over the given units, sorted ascending by size so
// that the big end (tail) serves the largest units first, "so that the GPU
// starts accessing the bigger workunits" (Section 2.3).
func NewDeque(units []Unit) *Deque {
	sorted := make([]Unit, len(units))
	copy(sorted, units)
	// insertion-free stable sort by size ascending
	sortUnitsBySize(sorted)
	return &Deque{units: sorted, head: 0, tail: len(sorted)}
}

func sortUnitsBySize(u []Unit) {
	// bottom-up merge sort: deterministic, stable, no stdlib sort.Slice
	// closure overhead in the hot path.
	n := len(u)
	buf := make([]Unit, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if u[i].Size <= u[j].Size {
					buf[k] = u[i]
					i++
				} else {
					buf[k] = u[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = u[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = u[j]
				j++
				k++
			}
		}
		copy(u, buf)
	}
}

// PopSmall removes up to batch units from the small end (CPU side).
// It returns nil when the queue is empty.
func (d *Deque) PopSmall(batch int) []Unit {
	d.mu.Lock()
	defer d.mu.Unlock()
	if batch <= 0 {
		batch = 1
	}
	avail := d.tail - d.head
	if avail <= 0 {
		return nil
	}
	if batch > avail {
		batch = avail
	}
	out := d.units[d.head : d.head+batch]
	d.head += batch
	return out
}

// PopBig removes up to batch units from the big end (GPU side).
func (d *Deque) PopBig(batch int) []Unit {
	d.mu.Lock()
	defer d.mu.Unlock()
	if batch <= 0 {
		batch = 1
	}
	avail := d.tail - d.head
	if avail <= 0 {
		return nil
	}
	if batch > avail {
		batch = avail
	}
	out := d.units[d.tail-batch : d.tail]
	d.tail -= batch
	return out
}

// Remaining reports the number of unclaimed units.
func (d *Deque) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tail - d.head
}
