package mcb

import (
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteForceMCBWeightExact computes the exact minimum weight of a cycle
// space basis by matroid greedy over ALL 2^f elements of the cycle space
// (feasible for f ≤ ~16): sort every GF(2) combination of fundamental
// cycles by the weight of its edge set, then greedily keep independent
// elements (pivot-map Gaussian elimination over the combination masks). By
// the matroid exchange property this total is the MCB weight.
func bruteForceMCBWeightExact(t *testing.T, g *graph.Graph) graph.Weight {
	t.Helper()
	sp := buildSpanning(g)
	f := sp.dim()
	if f > 16 {
		t.Fatalf("brute force infeasible for f=%d", f)
	}
	if f == 0 {
		return 0
	}
	m := g.NumEdges()
	fund := make([]*bitvec.Vector, f)
	for i := 0; i < f; i++ {
		v := bitvec.New(m)
		for _, eid := range sp.fundamentalCycle(sp.nontree[i]) {
			v.Flip(int(eid))
		}
		fund[i] = v
	}
	type elem struct {
		mask uint32
		w    graph.Weight
	}
	elems := make([]elem, 0, 1<<f)
	for mask := uint32(1); mask < 1<<f; mask++ {
		v := bitvec.New(m)
		for i := 0; i < f; i++ {
			if mask>>i&1 == 1 {
				v.Xor(fund[i])
			}
		}
		var w graph.Weight
		for _, eid := range v.Ones() {
			w += g.Edge(int32(eid)).W
		}
		elems = append(elems, elem{mask: mask, w: w})
	}
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].w < elems[j].w })
	pivot := make([]uint32, f) // pivot[i] = row with lowest set bit i
	var total graph.Weight
	rank := 0
	for _, e := range elems {
		x := e.mask
		for x != 0 {
			low := x & -x
			bit := trailing(low)
			if pivot[bit] == 0 {
				pivot[bit] = x
				total += e.w
				rank++
				break
			}
			x ^= pivot[bit]
		}
		if rank == f {
			break
		}
	}
	return total
}

func trailing(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// verifyBasis checks structural validity: correct cardinality, every
// element is a cycle (even degree at every vertex, at least one edge), and
// the set is linearly independent over the full edge space.
func verifyBasis(t *testing.T, g *graph.Graph, res *Result, label string) {
	t.Helper()
	wantDim := Dim(g)
	if res.Dim != wantDim || len(res.Cycles) != wantDim {
		t.Fatalf("%s: dim %d, %d cycles, want %d", label, res.Dim, len(res.Cycles), wantDim)
	}
	m := g.NumEdges()
	var vecs []*bitvec.Vector
	var total graph.Weight
	for ci, c := range res.Cycles {
		if len(c.Edges) == 0 {
			t.Fatalf("%s: cycle %d empty", label, ci)
		}
		deg := make(map[int32]int)
		var w graph.Weight
		v := bitvec.New(m)
		for _, eid := range c.Edges {
			e := g.Edge(eid)
			if e.U == e.V {
				// self-loop contributes even degree; still a valid cycle
			} else {
				deg[e.U]++
				deg[e.V]++
			}
			w += e.W
			if v.Get(int(eid)) {
				t.Fatalf("%s: cycle %d repeats edge %d", label, ci, eid)
			}
			v.Set(int(eid), true)
		}
		for vert, d := range deg {
			if d%2 != 0 {
				t.Fatalf("%s: cycle %d has odd degree %d at vertex %d", label, ci, d, vert)
			}
		}
		if w != c.Weight {
			t.Fatalf("%s: cycle %d weight %v, recomputed %v", label, ci, c.Weight, w)
		}
		total += w
		vecs = append(vecs, v)
	}
	if total != res.TotalWeight {
		t.Fatalf("%s: total %v, sum %v", label, res.TotalWeight, total)
	}
	if rank := bitvec.Rank(vecs); rank != wantDim {
		t.Fatalf("%s: basis rank %d, want %d", label, rank, wantDim)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("%s: %d fallback phases (non-unique shortest paths?)", label, res.Fallbacks)
	}
}

func smallGraphs() map[string]*graph.Graph {
	cfg := gen.Config{MaxWeight: 9}
	rng := gen.NewRNG(99)
	gs := map[string]*graph.Graph{
		"triangle":  gen.Ring(3, cfg, rng),
		"ring8":     gen.Ring(8, cfg, rng),
		"k4":        gen.Complete(4, cfg, rng),
		"k5":        gen.Complete(5, cfg, rng),
		"grid33":    gen.Grid(3, 3, cfg, rng),
		"gnm-small": gen.GNM(10, 14, cfg, rng),
		"subdiv":    gen.Subdivide(gen.Complete(4, cfg, rng), 0.8, 2, cfg, rng),
		"two-blocks": gen.ChainBlocks([]*graph.Graph{
			gen.Ring(4, cfg, rng), gen.Ring(5, cfg, rng),
		}, cfg, rng),
	}
	// multigraph with parallel edges and a self-loop
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 1, 3) // parallel
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 4)
	b.AddEdge(2, 2, 5) // self-loop
	gs["multi"] = b.Build()
	return gs
}

func TestDePinaMatchesBruteForce(t *testing.T) {
	for name, g := range smallGraphs() {
		want := bruteForceMCBWeightExact(t, g)
		for _, useEar := range []bool{false, true} {
			res := Compute(g, Options{UseEar: useEar})
			verifyBasis(t, g, res, name)
			if res.TotalWeight != want {
				t.Fatalf("%s (ear=%v): MCB weight %v, want %v", name, useEar, res.TotalWeight, want)
			}
		}
	}
}

func TestHortonMatchesBruteForce(t *testing.T) {
	for name, g := range smallGraphs() {
		want := bruteForceMCBWeightExact(t, g)
		for _, useEar := range []bool{false, true} {
			res := HortonMCB(g, useEar, 0)
			verifyBasis(t, g, res, "horton/"+name)
			if res.TotalWeight != want {
				t.Fatalf("horton %s (ear=%v): weight %v, want %v", name, useEar, res.TotalWeight, want)
			}
		}
	}
}

func TestEarAndFlatAgreeMediumGraphs(t *testing.T) {
	cfg := gen.Config{MaxWeight: 12}
	for seed := uint64(1); seed <= 8; seed++ {
		rng := gen.NewRNG(seed)
		n := 15 + rng.Intn(20)
		g := gen.GNM(n, n+5+rng.Intn(15), cfg, rng)
		if rng.Float64() < 0.7 {
			g = gen.Subdivide(g, 0.6, 3, cfg, rng)
		}
		flat := Compute(g, Options{UseEar: false, Seed: seed})
		withEar := Compute(g, Options{UseEar: true, Seed: seed * 31})
		verifyBasis(t, g, flat, "flat")
		verifyBasis(t, g, withEar, "ear")
		if flat.TotalWeight != withEar.TotalWeight {
			t.Fatalf("seed %d: flat weight %v != ear weight %v", seed, flat.TotalWeight, withEar.TotalWeight)
		}
		horton := HortonMCB(g, false, seed)
		if horton.TotalWeight != flat.TotalWeight {
			t.Fatalf("seed %d: horton %v != depina %v", seed, horton.TotalWeight, flat.TotalWeight)
		}
	}
}

// TestLemma31Invariants checks statements 3 and 4 of Lemma 3.1 directly:
// dimension and MCB weight are preserved under ear contraction.
func TestLemma31Invariants(t *testing.T) {
	cfg := gen.Config{MaxWeight: 8}
	for seed := uint64(1); seed <= 10; seed++ {
		rng := gen.NewRNG(seed * 7)
		base := gen.GNM(10, 16, cfg, rng)
		g := gen.Subdivide(base, 0.9, 3, cfg, rng)
		// dim invariance (statement 3)
		red := Compute(g, Options{UseEar: true, Seed: seed})
		flat := Compute(g, Options{UseEar: false, Seed: seed})
		if red.Dim != flat.Dim {
			t.Fatalf("seed %d: dim %d (ear) != %d (flat)", seed, red.Dim, flat.Dim)
		}
		// weight invariance (statement 4)
		if red.TotalWeight != flat.TotalWeight {
			t.Fatalf("seed %d: weight %v (ear) != %v (flat)", seed, red.TotalWeight, flat.TotalWeight)
		}
		if red.NodesRemoved == 0 {
			t.Fatalf("seed %d: subdivided graph should lose vertices in reduction", seed)
		}
	}
}

func TestPlatformsProduceSameBasisWeight(t *testing.T) {
	cfg := gen.Config{MaxWeight: 10}
	rng := gen.NewRNG(123)
	// Large enough that every phase has more work-units than the widest
	// device (the paper's parallel wins assume graph ≫ platform; on tiny
	// graphs launch overheads rightly dominate).
	g := gen.Subdivide(gen.GNM(500, 850, cfg, rng), 0.5, 2, cfg, rng)
	var weights []graph.Weight
	var sims []float64
	for _, p := range []Platform{Sequential, Multicore, GPU, Heterogeneous} {
		res := Compute(g, Options{UseEar: true, Platform: p, Workers: 2})
		verifyBasis(t, g, res, p.String())
		weights = append(weights, res.TotalWeight)
		sims = append(sims, res.SimSeconds)
		if res.SimSeconds <= 0 {
			t.Fatalf("%v: no simulated time", p)
		}
	}
	for i := 1; i < len(weights); i++ {
		if weights[i] != weights[0] {
			t.Fatalf("platform weight mismatch: %v", weights)
		}
	}
	// Parallel platforms should be no slower than sequential in sim time.
	if sims[1] >= sims[0] || sims[2] >= sims[0] || sims[3] >= sims[0] {
		t.Fatalf("expected parallel platforms faster: seq=%.4g mc=%.4g gpu=%.4g het=%.4g",
			sims[0], sims[1], sims[2], sims[3])
	}
}

func TestFVS(t *testing.T) {
	cfg := gen.Config{MaxWeight: 5}
	for seed := uint64(0); seed < 15; seed++ {
		rng := gen.NewRNG(seed)
		g := gen.GNM(20+rng.Intn(30), 30+rng.Intn(50), cfg, rng)
		fvs := FeedbackVertexSet(g)
		if !VerifyFVS(g, fvs) {
			t.Fatalf("seed %d: invalid FVS", seed)
		}
		if len(fvs) == g.NumVertices() {
			t.Fatalf("seed %d: FVS did not shrink at all", seed)
		}
	}
	// self-loop forces membership
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 2, 1)
	g := b.Build()
	fvs := FeedbackVertexSet(g)
	found := false
	for _, v := range fvs {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("FVS must contain the self-loop vertex, got %v", fvs)
	}
}

func TestAllRootsMatchesFVS(t *testing.T) {
	cfg := gen.Config{MaxWeight: 7}
	rng := gen.NewRNG(55)
	g := gen.GNM(18, 30, cfg, rng)
	a := Compute(g, Options{AllRoots: true})
	b := Compute(g, Options{AllRoots: false})
	if a.TotalWeight != b.TotalWeight {
		t.Fatalf("all-roots weight %v != FVS weight %v", a.TotalWeight, b.TotalWeight)
	}
	if a.NumRoots <= b.NumRoots {
		t.Fatalf("all-roots should use more roots: %d vs %d", a.NumRoots, b.NumRoots)
	}
}

func TestPhaseBreakdownConsistency(t *testing.T) {
	cfg := gen.Config{MaxWeight: 6}
	rng := gen.NewRNG(77)
	g := gen.GNM(25, 45, cfg, rng)
	res := Compute(g, Options{UseEar: true, Platform: Sequential})
	sum := res.Phase.Total()
	if res.SimSeconds != sum {
		t.Fatalf("SimSeconds %v != phase sum %v", res.SimSeconds, sum)
	}
	if res.LabelOps == 0 || res.SearchOps == 0 {
		t.Fatalf("expected nonzero phase work: %+v", res)
	}
}

func TestDisconnectedAndAcyclic(t *testing.T) {
	// forest: empty basis
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	forest := b.Build()
	res := Compute(forest, Options{UseEar: true})
	if res.Dim != 0 || len(res.Cycles) != 0 || res.TotalWeight != 0 {
		t.Fatalf("forest should have empty MCB, got %+v", res)
	}
	// two disjoint triangles
	b2 := graph.NewBuilder(6)
	b2.AddEdge(0, 1, 1)
	b2.AddEdge(1, 2, 2)
	b2.AddEdge(2, 0, 3)
	b2.AddEdge(3, 4, 1)
	b2.AddEdge(4, 5, 1)
	b2.AddEdge(5, 3, 1)
	g2 := b2.Build()
	res2 := Compute(g2, Options{UseEar: true})
	verifyBasis(t, g2, res2, "two-triangles")
	if res2.TotalWeight != 6+3 {
		t.Fatalf("two triangles weight %v, want 9", res2.TotalWeight)
	}
}

func TestPureCycleGraph(t *testing.T) {
	// a single ring reduces to one vertex with a self-loop; the basis is
	// the whole ring.
	cfg := gen.Config{MaxWeight: 4}
	rng := gen.NewRNG(5)
	g := gen.Ring(12, cfg, rng)
	res := Compute(g, Options{UseEar: true})
	verifyBasis(t, g, res, "ring")
	if len(res.Cycles) != 1 || len(res.Cycles[0].Edges) != 12 {
		t.Fatalf("ring basis should be the full ring, got %d cycles", len(res.Cycles))
	}
	if res.TotalWeight != g.TotalWeight() {
		t.Fatalf("ring basis weight %v, want %v", res.TotalWeight, g.TotalWeight())
	}
	if res.NodesRemoved != 11 {
		t.Fatalf("ring should remove 11 of 12 vertices, removed %d", res.NodesRemoved)
	}
}

func TestSignedSearchMatchesLabelledTree(t *testing.T) {
	for name, g := range smallGraphs() {
		want := bruteForceMCBWeightExact(t, g)
		for _, useEar := range []bool{false, true} {
			res := Compute(g, Options{UseEar: useEar, SignedSearch: true})
			verifyBasis(t, g, res, "signed/"+name)
			if res.TotalWeight != want {
				t.Fatalf("signed %s (ear=%v): weight %v, want %v", name, useEar, res.TotalWeight, want)
			}
		}
	}
	// medium random graphs: signed vs labelled-tree total weight
	cfg := gen.Config{MaxWeight: 11}
	for seed := uint64(1); seed <= 6; seed++ {
		rng := gen.NewRNG(seed * 13)
		g := gen.Subdivide(gen.GNM(14+rng.Intn(12), 22+rng.Intn(18), cfg, rng), 0.5, 2, cfg, rng)
		a := Compute(g, Options{UseEar: true, SignedSearch: true, Seed: seed})
		b := Compute(g, Options{UseEar: true, SignedSearch: false, Seed: seed})
		verifyBasis(t, g, a, "signed-medium")
		if a.TotalWeight != b.TotalWeight {
			t.Fatalf("seed %d: signed %v != labelled %v", seed, a.TotalWeight, b.TotalWeight)
		}
	}
}

func TestIsometricFilterPrunes(t *testing.T) {
	cfg := gen.Config{MaxWeight: 9}
	rng := gen.NewRNG(222)
	g := gen.GNM(40, 100, cfg, rng)
	res := Compute(g, Options{UseEar: false, AllRoots: true})
	if res.RejectedCandidates == 0 {
		t.Fatal("dense graph with all roots should reject many non-isometric candidates")
	}
	if res.NumCandidates == 0 {
		t.Fatal("no candidates survived")
	}
	// the filter typically prunes the majority of the raw Horton set
	if res.RejectedCandidates < res.NumCandidates {
		t.Logf("note: filter pruned %d of %d+%d raw candidates",
			res.RejectedCandidates, res.NumCandidates, res.RejectedCandidates)
	}
}

// TestWeightMultisetInvariant: all minimum weight bases of a matroid share
// the same multiset of element weights, not just the same total. Compare
// the three independent pipelines cycle-by-cycle.
func TestWeightMultisetInvariant(t *testing.T) {
	cfg := gen.Config{MaxWeight: 14}
	for seed := uint64(1); seed <= 5; seed++ {
		rng := gen.NewRNG(seed * 17)
		g := gen.Subdivide(gen.GNM(16, 28, cfg, rng), 0.5, 2, cfg, rng)
		multiset := func(res *Result) []graph.Weight {
			ws := make([]graph.Weight, len(res.Cycles))
			for i, c := range res.Cycles {
				ws[i] = c.Weight
			}
			sort.Float64s(ws)
			return ws
		}
		a := multiset(Compute(g, Options{UseEar: true, Seed: seed}))
		b := multiset(Compute(g, Options{UseEar: false, Seed: seed + 100}))
		c := multiset(HortonMCB(g, false, seed+200))
		d := multiset(Compute(g, Options{UseEar: true, SignedSearch: true, Seed: seed + 300}))
		for i := range a {
			if a[i] != b[i] || b[i] != c[i] || c[i] != d[i] {
				t.Fatalf("seed %d: weight multisets differ at %d: %v %v %v %v",
					seed, i, a[i], b[i], c[i], d[i])
			}
		}
	}
}
