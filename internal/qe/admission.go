package qe

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// admission is the bounded front door of the engine: maxInflight slots
// serve concurrently, up to maxQueue more requests may wait (until their
// context expires), and anything beyond that is shed immediately with
// ErrOverloaded. Both levels are exported as gauges so a dashboard shows
// the queue building before the shedding starts.
type admission struct {
	slots    chan struct{}
	maxQueue int64

	queued   *obs.Gauge // requests waiting for a slot
	inflight *obs.Gauge // requests holding a slot
	shed     *obs.Counter
	expired  *obs.Counter
	waitLat  *obs.Histogram
}

func newAdmission(maxInflight, maxQueue int, reg *obs.Registry) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),

		queued:   reg.Gauge("qe.queue.depth"),
		inflight: reg.Gauge("qe.inflight"),
		shed:     reg.Counter("qe.shed"),
		expired:  reg.Counter("qe.queue.expired"),
		waitLat:  reg.Histogram("qe.queue.wait"),
	}
}

// acquire claims a serving slot, waiting in the bounded queue when all
// slots are busy. It returns ErrOverloaded (wrapped, with the depth)
// when the queue itself is full, or the context error when the caller's
// deadline expires while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Inc()
		return nil
	default:
	}
	if depth := a.queued.Inc(); depth > a.maxQueue {
		a.queued.Dec()
		a.shed.Inc()
		return fmt.Errorf("%w (inflight %d, queued %d)", ErrOverloaded, a.inflight.Value(), a.maxQueue)
	}
	t0 := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.queued.Dec()
		a.waitLat.Observe(time.Since(t0))
		a.inflight.Inc()
		return nil
	case <-ctx.Done():
		a.queued.Dec()
		a.expired.Inc()
		return fmt.Errorf("qe: admission wait: %w", ctx.Err())
	}
}

// release returns a slot.
func (a *admission) release() {
	<-a.slots
	a.inflight.Dec()
}
