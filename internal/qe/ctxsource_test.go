package qe

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// flakySource is a CtxRowSource whose builds fail while fail is set —
// the shape of a fan-out source with a dead shard. Successful rows are
// row[src][v] = src*1000 + v, matching stubSource.
type flakySource struct {
	n      int
	fail   atomic.Bool
	builds atomic.Int64
	gate   chan struct{} // nil: never block
}

func (s *flakySource) NumVertices() int { return s.n }

var errFlaky = errors.New("flaky: shard down")

func (s *flakySource) RowCtx(_ context.Context, src int32, out []graph.Weight) (int64, error) {
	s.builds.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.fail.Load() {
		return 0, errFlaky
	}
	for v := 0; v < s.n; v++ {
		out[v] = graph.Weight(int(src)*1000 + v)
	}
	return int64(s.n), nil
}

// Row is the legacy surface; the engine must prefer RowCtx and never
// call it.
func (s *flakySource) Row(int32, []graph.Weight) int64 {
	panic("flakySource.Row called: engine did not use RowCtx")
}

// TestCtxSourceErrorPropagates: a failing build surfaces the source's
// error from Query, is never cached, and a subsequent build after the
// source recovers succeeds and caches normally.
func TestCtxSourceErrorPropagates(t *testing.T) {
	src := &flakySource{n: 16}
	src.fail.Store(true)
	e, reg := newTestEngine(src, Config{CacheRows: 8})
	defer e.Close(context.Background())

	if _, err := e.Query(context.Background(), 1, 2); !errors.Is(err, errFlaky) {
		t.Fatalf("Query during outage: err=%v, want errFlaky", err)
	}
	if got := reg.Counter("qe.rows.build.errors").Value(); got != 1 {
		t.Fatalf("build.errors=%d, want 1", got)
	}

	src.fail.Store(false)
	d, err := e.Query(context.Background(), 1, 2)
	if err != nil {
		t.Fatalf("Query after recovery: %v", err)
	}
	if want := graph.Weight(1002); d != want {
		t.Fatalf("Query after recovery = %v, want %v", d, want)
	}
	// The failed attempt must not have been cached: recovery required a
	// second build.
	if got := src.builds.Load(); got != 2 {
		t.Fatalf("builds=%d, want 2 (failure then rebuild)", got)
	}
	// And the recovered row is cached: a third query builds nothing.
	if _, err := e.Query(context.Background(), 1, 3); err != nil {
		t.Fatalf("cached Query: %v", err)
	}
	if got := src.builds.Load(); got != 2 {
		t.Fatalf("builds=%d after cached hit, want 2", got)
	}
}

// TestCtxSourceErrorCoalesces: waiters coalesced onto a failing build
// all receive the error, and none panics on a missing buffer.
func TestCtxSourceErrorCoalesces(t *testing.T) {
	const K = 8
	src := &flakySource{n: 16, gate: make(chan struct{})}
	src.fail.Store(true)
	e, _ := newTestEngine(src, Config{CacheRows: 8, MaxInflight: K, QueueDepth: K})
	defer e.Close(context.Background())

	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Query(context.Background(), 3, int32(i%16))
		}(i)
	}
	// Let the waiters pile onto the single in-flight build, then release.
	for src.builds.Load() == 0 {
	}
	close(src.gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, errFlaky) {
			t.Fatalf("waiter %d: err=%v, want errFlaky", i, err)
		}
	}
}

// TestCtxSourceBatchError: one failed row build fails the whole batch
// with the source's error rather than returning an Inf-padded matrix.
func TestCtxSourceBatchError(t *testing.T) {
	src := &flakySource{n: 16}
	src.fail.Store(true)
	e, _ := newTestEngine(src, Config{CacheRows: 8})
	defer e.Close(context.Background())

	_, err := e.Batch(context.Background(), []int32{0, 1, 2}, []int32{3, 4})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("Batch during outage: err=%v, want errFlaky", err)
	}

	src.fail.Store(false)
	got, err := e.Batch(context.Background(), []int32{0, 1, 2}, []int32{3, 4})
	if err != nil {
		t.Fatalf("Batch after recovery: %v", err)
	}
	for i, u := range []int32{0, 1, 2} {
		for j, v := range []int32{3, 4} {
			if want := graph.Weight(int(u)*1000 + int(v)); got[i][j] != want {
				t.Fatalf("Batch[%d][%d] = %v, want %v", i, j, got[i][j], want)
			}
		}
	}
}
