package ds

import (
	"math/rand"
	"testing"
)

// batchWalk drains l through BatchFrom in windows of max, resuming from the
// returned cursor, and returns every value seen.
func batchWalk(l *ChunkedList, max int) []uint32 {
	var out []uint32
	var cur Cursor
	vals := make([]uint32, 0, max)
	curs := make([]Cursor, 0, max)
	for {
		vals, curs, cur = l.BatchFrom(cur, max, vals[:0], curs[:0])
		if len(vals) == 0 {
			return out
		}
		out = append(out, vals...)
		if len(vals) < max { // partial window: the list is exhausted
			return out
		}
		_ = curs
	}
}

func TestBatchFromMatchesCollect(t *testing.T) {
	for _, chunk := range []int{1, 3, 8} {
		for _, max := range []int{1, 2, 5, 100} {
			l := NewChunkedList(chunk)
			for i := 0; i < 37; i++ {
				l.Append(uint32(i * 3))
			}
			got := batchWalk(l, max)
			want := l.Collect()
			if len(got) != len(want) {
				t.Fatalf("chunk=%d max=%d: walked %d values, Collect has %d", chunk, max, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("chunk=%d max=%d: value %d = %d, want %d", chunk, max, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBatchFromEmpty(t *testing.T) {
	l := NewChunkedList(4)
	vals, curs, _ := l.BatchFrom(Cursor{}, 10, nil, nil)
	if len(vals) != 0 || len(curs) != 0 {
		t.Fatalf("empty list: got %d values, %d cursors", len(vals), len(curs))
	}
}

func TestBatchFromCursorsRemovable(t *testing.T) {
	// Each cursor a batch hands back must be valid for Remove — that is
	// exactly how the parallel candidate scan deletes its chosen cycle.
	l := NewChunkedList(4)
	for i := 0; i < 10; i++ {
		l.Append(uint32(i))
	}
	vals, curs, _ := l.BatchFrom(Cursor{}, 10, nil, nil)
	if len(vals) != 10 {
		t.Fatalf("got %d values, want 10", len(vals))
	}
	l.Remove(curs[7])
	want := []uint32{0, 1, 2, 3, 4, 5, 6, 8, 9}
	got := l.Collect()
	if len(got) != len(want) {
		t.Fatalf("after remove: %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after remove: %v, want %v", got, want)
		}
	}
}

func TestBatchFromSkipsRemoved(t *testing.T) {
	l := NewChunkedList(16) // large chunk: removals mark in place, no compaction
	for i := 0; i < 12; i++ {
		l.Append(uint32(i))
	}
	_, curs, _ := l.BatchFrom(Cursor{}, 12, nil, nil)
	l.Remove(curs[0])
	l.Remove(curs[5])
	l.Remove(curs[11])
	vals, _, _ := l.BatchFrom(Cursor{}, 12, nil, nil)
	want := []uint32{1, 2, 3, 4, 6, 7, 8, 9, 10}
	if len(vals) != len(want) {
		t.Fatalf("after removals got %v, want %v", vals, want)
	}
	for i := range vals {
		if vals[i] != want[i] {
			t.Fatalf("after removals got %v, want %v", vals, want)
		}
	}
}

// Property: windowed batching agrees with a cursor Scan for random
// append/remove interleavings and window sizes.
func TestBatchFromProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		l := NewChunkedList(1 + rng.Intn(7))
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			l.Append(uint32(rng.Intn(1000)))
		}
		// Random removals through fresh batch cursors.
		for k := rng.Intn(5); k > 0 && l.Len() > 0; k-- {
			_, curs, _ := l.BatchFrom(Cursor{}, l.Len(), nil, nil)
			l.Remove(curs[rng.Intn(len(curs))])
		}
		got := batchWalk(l, 1+rng.Intn(9))
		want := l.Collect()
		if len(got) != len(want) {
			t.Fatalf("trial %d: walked %d values, Collect has %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: value %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}
