package registry

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// BenchmarkRegistryLookupWarm measures the full warm named-graph hop:
// Acquire (table hit, ref bump, LRU touch) → cached Query → Release.
// The benchgate baseline pins this at 0 allocs/op — the registry must
// add nothing to the engine's zero-alloc hot path.
func BenchmarkRegistryLookupWarm(b *testing.B) {
	dir := b.TempDir()
	writeSnap(b, dir, "hot", testGraph(42))
	r, err := Open(Config{Dir: dir, MaxGraphs: 4, Limits: Limits{CacheRows: 64}, Reg: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Hydrate and warm the row cache outside the measured loop.
	e, err := r.Acquire(ctx, "hot")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Engine().Query(ctx, 0, 1); err != nil {
		b.Fatal(err)
	}
	e.Release()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := r.Acquire(ctx, "hot")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Engine().Query(ctx, 0, 1); err != nil {
			b.Fatal(err)
		}
		e.Release()
	}
}
