package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/shard"
)

// enableCluster attaches the frontend's fan-out source to the server so
// the /v1/cluster surface can report plan identity and shard health.
// Called once, before serving starts; the field is read-only afterwards.
func (s *server) enableCluster(src *shard.RemoteSource) { s.cluster = src }

// clusterResponse is GET /v1/cluster: the plan's identity plus one
// cursor page of shard statuses, in the uniform items/next_cursor
// collection shape shared with /v1/graphs and /v1/jobs.
type clusterResponse struct {
	Epoch      uint64              `json:"epoch"`
	NumShards  int32               `json:"num_shards"`
	Blocks     int                 `json:"blocks"`
	Vertices   int                 `json:"vertices"`
	Items      []shard.ShardStatus `json:"items"`
	NextCursor string              `json:"next_cursor,omitempty"`
	Total      int                 `json:"total"`
}

// shardDetailResponse is GET /v1/cluster/shards/{id}: one shard's status
// plus the plan epoch the frontend routes by.
type shardDetailResponse struct {
	shard.ShardStatus
	Epoch uint64 `json:"epoch"`
}

// errNotFrontend is the 503 every cluster route answers on daemons that
// are not cluster frontends — same idiom as the jobs routes without
// -jobs-dir.
func errNotFrontend() error {
	return &httpError{http.StatusServiceUnavailable,
		fmt.Errorf("not a cluster frontend (start with -cluster-plan and -cluster-shards)")}
}

// clusterList serves GET /v1/cluster. The cursor is the last page's
// highest shard id, keyset-style like the other collections; shard ids
// are dense and stable for a plan's lifetime, so a page is never skewed
// by concurrent changes.
func (s *server) clusterList(r *http.Request) (interface{}, error) {
	if s.cluster == nil {
		return nil, errNotFrontend()
	}
	cursor, limit, err := pageParams(r)
	if err != nil {
		return nil, err
	}
	all := s.cluster.Status()
	total := len(all)
	if cursor != "" {
		after, err := strconv.Atoi(cursor)
		if err != nil {
			return nil, fmt.Errorf("malformed cursor %q", cursor)
		}
		i := sort.Search(len(all), func(k int) bool { return int(all[k].ID) > after })
		all = all[i:]
	}
	next := ""
	if len(all) > limit {
		all = all[:limit]
		next = strconv.Itoa(int(all[len(all)-1].ID))
	}
	p := s.cluster.Plan()
	return clusterResponse{
		Epoch:      p.Epoch,
		NumShards:  p.NumShards,
		Blocks:     p.NumBlocks(),
		Vertices:   p.NumVertices,
		Items:      all,
		NextCursor: next,
		Total:      total,
	}, nil
}

// clusterShard serves GET /v1/cluster/shards/{id}.
func (s *server) clusterShard(r *http.Request) (interface{}, error) {
	if s.cluster == nil {
		return nil, errNotFrontend()
	}
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		return nil, fmt.Errorf("shard id must be an integer")
	}
	all := s.cluster.Status()
	if id64 < 0 || int(id64) >= len(all) {
		return nil, &httpError{http.StatusNotFound,
			fmt.Errorf("no shard %d in a %d-shard plan", id64, len(all))}
	}
	return shardDetailResponse{ShardStatus: all[id64], Epoch: s.cluster.Epoch()}, nil
}
