package check

import (
	"context"
	"fmt"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Delta differential harness. ApplyDelta's correctness claim is
// rebuild-equivalence: applying a script incrementally — one delta at a
// time and as one batch — must answer every pair exactly like an oracle
// built from scratch on the mutated graph, which is itself held to the
// independent Floyd–Warshall reference. A failing script is shrunk by
// delta debugging over its records before being reported.

// DeltaScript names one delta script for the sweep.
type DeltaScript struct {
	Name   string
	Deltas []apsp.Delta
}

// DeltaScripts derives the standard mutation scripts for g: weight bump,
// zero weight, within-block and spanning inserts, a vertex-growing
// insert, block-splitting deletes, a mixed script exercising positional
// edge-ID semantics, and — on disconnected graphs — a component-merging
// insert. All scripts are valid for g by construction; randomness (seeded)
// only varies weights.
func DeltaScripts(g *graph.Graph, seed uint64) []DeltaScript {
	rng := gen.NewRNG(seed)
	n := int32(g.NumVertices())
	m := int32(g.NumEdges())
	bump := func() graph.Weight { return graph.Weight(1 + rng.Intn(9)) }

	var out []DeltaScript
	add := func(name string, ds ...apsp.Delta) {
		out = append(out, DeltaScript{Name: name, Deltas: ds})
	}
	if m > 0 {
		e0 := g.Edge(0)
		add("weight-bump", apsp.Delta{Kind: apsp.DeltaWeight, Edge: 0, W: e0.W + bump()})
		add("zero-weight", apsp.Delta{Kind: apsp.DeltaWeight, Edge: m / 2, W: 0})
		add("delete-first", apsp.Delta{Kind: apsp.DeltaDelete, Edge: 0})
		add("delete-last", apsp.Delta{Kind: apsp.DeltaDelete, Edge: m - 1})
		// A parallel edge lands inside the first edge's block.
		add("insert-in-block", apsp.Delta{Kind: apsp.DeltaInsert, U: e0.U, V: e0.V, W: e0.W + bump()})
	}
	if n >= 2 {
		// 0 and n-1 usually sit in different blocks (or components).
		add("insert-span", apsp.Delta{Kind: apsp.DeltaInsert, U: 0, V: n - 1, W: bump()})
	}
	if n >= 1 {
		add("insert-new-vertex", apsp.Delta{Kind: apsp.DeltaInsert, U: 0, V: n, W: bump()})
	}
	if m >= 2 && n >= 2 {
		add("mixed",
			apsp.Delta{Kind: apsp.DeltaWeight, Edge: 0, W: bump()},
			apsp.Delta{Kind: apsp.DeltaInsert, U: 0, V: n - 1, W: bump()},
			apsp.Delta{Kind: apsp.DeltaDelete, Edge: 0},
			// After the delete, m-1 names the edge inserted above.
			apsp.Delta{Kind: apsp.DeltaWeight, Edge: m - 1, W: 0},
		)
	}
	if u, v, ok := twoComponentReps(g); ok {
		add("merge-components", apsp.Delta{Kind: apsp.DeltaInsert, U: u, V: v, W: bump()})
	}
	return out
}

// DecodeDeltaScript maps arbitrary bytes (a fuzzer's input) onto a delta
// script that is valid by construction for an n-vertex, m-edge graph:
// each 5-byte group is one delta whose kind cycles through
// weight/insert/delete and whose IDs are reduced modulo the evolving
// edge/vertex counts — so the script respects positional edge-ID
// semantics and the bounded-growth insert rule at every step. The mapping
// is total; groups that cannot produce a valid delta (weight/delete on an
// edgeless graph) are skipped.
func DecodeDeltaScript(data []byte, n, m, maxDeltas int) []apsp.Delta {
	var out []apsp.Delta
	curN, curM := n, m
	for i := 0; i+4 < len(data) && len(out) < maxDeltas; i += 5 {
		a := int(data[i+1]) | int(data[i+2])<<8
		b := int(data[i+3])
		w := graph.Weight(int(data[i+4]) % 10)
		switch apsp.DeltaKind(data[i] % 3) {
		case apsp.DeltaWeight:
			if curM == 0 {
				continue
			}
			out = append(out, apsp.Delta{Kind: apsp.DeltaWeight, Edge: int32(a % curM), W: w})
		case apsp.DeltaInsert:
			u := int32(a % (curN + 2))
			v := int32(b % (curN + 2))
			out = append(out, apsp.Delta{Kind: apsp.DeltaInsert, U: u, V: v, W: w})
			if hi := int(u) + 1; hi > curN {
				curN = hi
			}
			if hi := int(v) + 1; hi > curN {
				curN = hi
			}
			curM++
		case apsp.DeltaDelete:
			if curM == 0 {
				continue
			}
			out = append(out, apsp.Delta{Kind: apsp.DeltaDelete, Edge: int32(a % curM)})
			curM--
		}
	}
	return out
}

// twoComponentReps returns one vertex from each of two different
// connected components, if the graph has them.
func twoComponentReps(g *graph.Graph) (int32, int32, bool) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	comp := int32(0)
	var queue []int32
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = comp
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			g.Neighbors(queue[qi], func(u int32, _ int32) bool {
				if label[u] < 0 {
					label[u] = comp
					queue = append(queue, u)
				}
				return true
			})
		}
		comp++
	}
	if comp < 2 {
		return 0, 0, false
	}
	var first int32
	for v := int32(0); int(v) < n; v++ {
		if label[v] == 0 {
			first = v
		}
		if label[v] == 1 {
			return first, v, true
		}
	}
	return 0, 0, false
}

// DeltaDivergence reports a script on which the incremental oracle
// disagrees with rebuild-from-scratch, minimised by delta debugging.
type DeltaDivergence struct {
	Graph  string
	Script []apsp.Delta
	Detail string
}

func (d *DeltaDivergence) Error() string {
	return fmt.Sprintf("check: ApplyDelta diverges from rebuild on %q with %d-delta script %v: %s",
		d.Graph, len(d.Script), d.Script, d.Detail)
}

// DeltaEquivalence asserts that applying deltas to an oracle built on g —
// both one delta at a time and as a single batch — answers every ordered
// pair identically to (a) a from-scratch oracle on the mutated graph and
// (b) the Floyd–Warshall reference, with invariants and the Row surface
// checked along the way. On divergence the script is ddmin-minimised and
// returned as a *DeltaDivergence.
func DeltaEquivalence(g *graph.Graph, name string, deltas []apsp.Delta, workers int) error {
	err := deltaEquivalenceOnce(g, deltas, workers)
	if err == nil {
		return nil
	}
	// Candidates that are no longer valid scripts for g (positional edge
	// IDs shift when records are dropped) count as non-failing, so the
	// minimiser stays inside the input domain.
	min := minimizeDeltas(deltas, func(cand []apsp.Delta) bool {
		if _, err := apsp.MutateGraph(g, cand); err != nil {
			return false
		}
		return deltaEquivalenceOnce(g, cand, workers) != nil
	})
	detail := err.Error()
	if merr := deltaEquivalenceOnce(g, min, workers); merr != nil {
		detail = merr.Error()
	}
	return &DeltaDivergence{Graph: name, Script: min, Detail: detail}
}

func deltaEquivalenceOnce(g *graph.Graph, deltas []apsp.Delta, workers int) error {
	ctx := context.Background()
	base, err := apsp.NewOracleParallelCtx(ctx, g, workers)
	if err != nil {
		return fmt.Errorf("base build: %w", err)
	}
	seq := base
	for i, d := range deltas {
		next, _, err := seq.ApplyDeltaParallel(ctx, []apsp.Delta{d}, workers)
		if err != nil {
			return fmt.Errorf("sequential apply of delta %d: %w", i, err)
		}
		seq = next
	}
	batch, _, err := base.ApplyDeltaParallel(ctx, deltas, workers)
	if err != nil {
		return fmt.Errorf("batch apply: %w", err)
	}
	mutated, err := apsp.MutateGraph(g, deltas)
	if err != nil {
		return fmt.Errorf("reference mutation: %w", err)
	}
	rebuilt := apsp.NewOracleParallel(mutated, workers)
	ref := apsp.FloydWarshall(mutated)
	n := mutated.NumVertices()

	for _, side := range []struct {
		name string
		o    *apsp.Oracle
	}{{"sequential", seq}, {"batch", batch}, {"rebuilt", rebuilt}} {
		if err := side.o.CheckInvariants(); err != nil {
			return fmt.Errorf("%s oracle invariants: %w", side.name, err)
		}
		if side.o.G.NumVertices() != n {
			return fmt.Errorf("%s oracle has %d vertices, mutated graph %d",
				side.name, side.o.G.NumVertices(), n)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got, want := side.o.Query(int32(u), int32(v)), ref[u*n+v]
				if got != want {
					return fmt.Errorf("%s oracle: d(%d,%d) = %v, reference %v", side.name, u, v, got, want)
				}
			}
		}
	}
	// The Row surface (what qe serves from) must agree with Query on the
	// incremental oracle.
	row := make([]graph.Weight, n)
	for u := 0; u < n; u++ {
		if _, err := seq.RowChecked(int32(u), row); err != nil {
			return fmt.Errorf("RowChecked(%d): %w", u, err)
		}
		for v := 0; v < n; v++ {
			if row[v] != ref[u*n+v] {
				return fmt.Errorf("row %d entry %d = %v, reference %v", u, v, row[v], ref[u*n+v])
			}
		}
	}
	return nil
}

// minimizeDeltas is ddmin (the MinimizeEdges loop) over a delta script:
// it shrinks deltas to a locally minimal sub-script still satisfying
// fails. fails must be deterministic and treat invalid candidate scripts
// as non-failing.
func minimizeDeltas(deltas []apsp.Delta, fails func([]apsp.Delta) bool) []apsp.Delta {
	cur := append([]apsp.Delta(nil), deltas...)
	granularity := 2
	for len(cur) > 1 {
		if granularity > len(cur) {
			granularity = len(cur)
		}
		chunk := (len(cur) + granularity - 1) / granularity
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := make([]apsp.Delta, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				granularity = 2
				reduced = true
				break
			}
		}
		if !reduced {
			if granularity >= len(cur) {
				break
			}
			granularity *= 2
		}
	}
	return cur
}
