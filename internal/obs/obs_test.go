package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("events")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ≤ 1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < time.Millisecond {
		t.Fatalf("p99 = %v, want ≥ 1ms", p99)
	}
	// Extremes must not index out of range.
	h.Observe(0)
	h.Observe(-time.Second)
	h.Observe(24 * time.Hour)
	if h.Quantile(1.0) <= 0 {
		t.Fatal("q=1 quantile not positive")
	}
	var raw map[string]int64
	if err := json.Unmarshal([]byte(h.String()), &raw); err != nil {
		t.Fatalf("histogram String is not JSON: %v", err)
	}
}

func TestPhases(t *testing.T) {
	var p Phases
	p.Record("bcc", 2*time.Millisecond)
	p.Record("blocks", 3*time.Millisecond)
	p.Record("bcc", 1*time.Millisecond) // accumulates
	if got := p.Get("bcc"); got != 3*time.Millisecond {
		t.Fatalf("bcc = %v", got)
	}
	if got := p.Total(); got != 6*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
	stop := p.Start("aptable")
	stop()
	if p.Get("aptable") < 0 {
		t.Fatal("negative phase duration")
	}
	var raw map[string]int64
	if err := json.Unmarshal([]byte(p.String()), &raw); err != nil {
		t.Fatalf("phases String is not JSON: %v", err)
	}
	if _, ok := raw["bcc_us"]; !ok {
		t.Fatalf("phases JSON missing bcc_us: %s", p.String())
	}
}

func TestRegistryJSONAndPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.requests").Add(3)
	r.Histogram("a.latency").Observe(time.Millisecond)
	r.Phases("build").Record("bcc", time.Millisecond)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(r.String()), &raw); err != nil {
		t.Fatalf("registry String is not JSON: %v\n%s", err, r.String())
	}
	for _, k := range []string{"a.requests", "a.latency", "build"} {
		if _, ok := raw[k]; !ok {
			t.Fatalf("registry JSON missing %q: %s", k, r.String())
		}
	}
	// Publishing twice must not panic.
	r.Publish("obs-test-registry")
	r.Publish("obs-test-registry")
}

func TestRegistryConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
				r.Phases("p").Record("x", time.Microsecond)
				_ = r.String()
			}
		}(w)
	}
	wg.Wait()
	if r.Counter("c").Value() != 1600 {
		t.Fatalf("c = %d", r.Counter("c").Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if v := g.Inc(); v != 1 {
		t.Fatalf("Inc returned %d, want 1", v)
	}
	if v := g.Add(5); v != 6 {
		t.Fatalf("Add(5) returned %d, want 6", v)
	}
	if v := g.Dec(); v != 5 {
		t.Fatalf("Dec returned %d, want 5", v)
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("Value = %d, want -3", g.Value())
	}
	if g.String() != "-3" {
		t.Fatalf("String = %q, want -3", g.String())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Gauge("depth").Inc()
				r.Gauge("depth").Dec()
			}
		}()
	}
	wg.Wait()
	if v := r.Gauge("depth").Value(); v != 0 {
		t.Fatalf("balanced inc/dec left gauge at %d", v)
	}
}

func TestRegistryRendersGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("q.depth").Set(7)
	r.Counter("q.requests").Inc()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(r.String()), &raw); err != nil {
		t.Fatalf("registry String is not JSON: %v\n%s", err, r.String())
	}
	if string(raw["q.depth"]) != "7" {
		t.Fatalf("gauge rendered as %s, want 7", raw["q.depth"])
	}
}

func TestSubPrefixesNames(t *testing.T) {
	root := NewRegistry()
	sub := root.Sub("g.a.")
	sub.Counter("qe.hits").Add(3)
	sub.Gauge("qe.rows").Set(5)
	sub.Histogram("qe.lat").Observe(time.Millisecond)
	sub.Phases("build").Record("bcc", time.Millisecond)

	// The view and the root name the same objects: a prefixed lookup on
	// the root must collide with the view's un-prefixed one.
	if root.Counter("g.a.qe.hits") != sub.Counter("qe.hits") {
		t.Fatalf("sub counter is not the root's prefixed counter")
	}
	if got := root.Counter("g.a.qe.hits").Value(); got != 3 {
		t.Fatalf("root sees %d through the prefixed name, want 3", got)
	}
	if root.Gauge("g.a.qe.rows") != sub.Gauge("qe.rows") {
		t.Fatalf("sub gauge is not the root's prefixed gauge")
	}
	if root.Histogram("g.a.qe.lat") != sub.Histogram("qe.lat") {
		t.Fatalf("sub histogram is not the root's prefixed histogram")
	}
	if root.Phases("g.a.build") != sub.Phases("build") {
		t.Fatalf("sub phases is not the root's prefixed phases")
	}
}

func TestSubCollisionAcrossViews(t *testing.T) {
	root := NewRegistry()
	a1 := root.Sub("g.a.")
	a2 := root.Sub("g.a.")
	b := root.Sub("g.b.")
	a1.Counter("hits").Inc()
	a2.Counter("hits").Inc()
	b.Counter("hits").Inc()
	if got := root.Counter("g.a.hits").Value(); got != 2 {
		t.Fatalf("two views of one prefix diverged: %d, want 2", got)
	}
	if got := root.Counter("g.b.hits").Value(); got != 1 {
		t.Fatalf("distinct prefix leaked: %d, want 1", got)
	}
	// Nested subs compose prefixes and still delegate to the root.
	nested := a1.Sub("deep.")
	nested.Counter("x").Inc()
	if got := root.Counter("g.a.deep.x").Value(); got != 1 {
		t.Fatalf("nested sub missed the root: %d, want 1", got)
	}
}

func TestSubStringRendersScopedView(t *testing.T) {
	root := NewRegistry()
	root.Counter("top").Add(9)
	sub := root.Sub("g.a.")
	sub.Counter("qe.hits").Add(4)
	sub.Gauge("qe.rows").Set(2)

	var scoped map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sub.String()), &scoped); err != nil {
		t.Fatalf("sub String is not JSON: %v\n%s", err, sub.String())
	}
	if string(scoped["qe.hits"]) != "4" || string(scoped["qe.rows"]) != "2" {
		t.Fatalf("scoped view missing members: %v", scoped)
	}
	if _, leaked := scoped["top"]; leaked {
		t.Fatalf("scoped view rendered an out-of-prefix metric: %v", scoped)
	}
	// The root renders everything under the full prefixed names.
	var all map[string]json.RawMessage
	if err := json.Unmarshal([]byte(root.String()), &all); err != nil {
		t.Fatalf("root String is not JSON: %v", err)
	}
	for _, want := range []string{"top", "g.a.qe.hits", "g.a.qe.rows"} {
		if _, ok := all[want]; !ok {
			t.Fatalf("root rendering missing %q: %v", want, all)
		}
	}
}

func TestSubExpvarRendering(t *testing.T) {
	root := NewRegistry()
	root.Sub("g.ring.").Counter("qe.cache.hits").Add(11)
	root.Publish("obs_sub_expvar_test")
	v := expvar.Get("obs_sub_expvar_test")
	if v == nil {
		t.Fatalf("registry not published")
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal([]byte(v.String()), &all); err != nil {
		t.Fatalf("published registry is not JSON: %v", err)
	}
	if string(all["g.ring.qe.cache.hits"]) != "11" {
		t.Fatalf("expvar rendering missing sub metric: %v", all)
	}
}
