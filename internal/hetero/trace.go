package hetero

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent is one executed batch in a traced schedule.
type TraceEvent struct {
	Device string
	Slot   int
	Start  float64 // virtual seconds
	End    float64
	Units  int
}

// Trace is a recorded schedule: the events of every slot, ordered by start
// time, plus the resulting Schedule summary.
type Trace struct {
	Schedule *Schedule
	Events   []TraceEvent
}

// RunTraced is Run with event recording, for schedule inspection and the
// Gantt rendering below.
func RunTraced(units []Unit, devices []*Device, exec func(u Unit, d *Device) Cost) *Trace {
	d := NewDeque(units)
	s := &Schedule{
		BusyByDevice:  make(map[string]float64, len(devices)),
		UnitsByDevice: make(map[string]int, len(devices)),
	}
	tr := &Trace{Schedule: s}
	var h slotHeap
	idx := 0
	slotIndex := map[*slot]int{}
	for _, dev := range devices {
		for i := 0; i < dev.Slots; i++ {
			sl := &slot{dev: dev, index: idx}
			slotIndex[sl] = i
			h = append(h, sl)
			idx++
		}
	}
	heap.Init(&h)
	costs := make([]Cost, 0, 64)
	for d.Remaining() > 0 && len(h) > 0 {
		sl := heap.Pop(&h).(*slot)
		var batch []Unit
		if sl.dev.Big {
			batch = d.PopBig(sl.dev.BatchSize)
		} else {
			batch = d.PopSmall(sl.dev.BatchSize)
		}
		if len(batch) == 0 {
			continue
		}
		costs = costs[:0]
		for _, u := range batch {
			c := exec(u, sl.dev)
			costs = append(costs, c)
			s.TotalOps += c.Ops
		}
		dt := sl.dev.slotTime(costs)
		tr.Events = append(tr.Events, TraceEvent{
			Device: sl.dev.Name,
			Slot:   slotIndex[sl],
			Start:  sl.clock,
			End:    sl.clock + dt,
			Units:  len(batch),
		})
		sl.clock += dt
		s.BusyByDevice[sl.dev.Name] += dt
		s.UnitsByDevice[sl.dev.Name] += len(batch)
		if sl.clock > s.Makespan {
			s.Makespan = sl.clock
		}
		heap.Push(&h, sl)
	}
	sort.Slice(tr.Events, func(i, j int) bool {
		if tr.Events[i].Device != tr.Events[j].Device {
			return tr.Events[i].Device < tr.Events[j].Device
		}
		if tr.Events[i].Slot != tr.Events[j].Slot {
			return tr.Events[i].Slot < tr.Events[j].Slot
		}
		return tr.Events[i].Start < tr.Events[j].Start
	})
	return tr
}

// WriteGantt renders the trace as a text Gantt chart, one row per slot,
// width columns across the makespan. Busy time is drawn with '#', idle
// with '.'.
func (tr *Trace) WriteGantt(w io.Writer, width int) error {
	if width < 10 {
		width = 80
	}
	makespan := tr.Schedule.Makespan
	if makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	type row struct {
		label string
		cells []bool
	}
	rows := map[string]*row{}
	var order []string
	for _, e := range tr.Events {
		key := fmt.Sprintf("%s/%02d", e.Device, e.Slot)
		r, ok := rows[key]
		if !ok {
			r = &row{label: key, cells: make([]bool, width)}
			rows[key] = r
			order = append(order, key)
		}
		lo := int(e.Start / makespan * float64(width))
		hi := int(e.End / makespan * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			r.cells[i] = true
		}
	}
	sort.Strings(order)
	for _, key := range order {
		r := rows[key]
		var b strings.Builder
		for _, busy := range r.cells {
			if busy {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if _, err := fmt.Fprintf(w, "%-14s |%s|\n", r.label, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-14s  makespan %.4fs, %d ops\n", "", makespan, tr.Schedule.TotalOps)
	return err
}

// Utilization returns busy/(makespan·slots) per device.
func (tr *Trace) Utilization(devices []*Device) map[string]float64 {
	out := map[string]float64{}
	for _, d := range devices {
		if tr.Schedule.Makespan > 0 {
			out[d.Name] = tr.Schedule.BusyByDevice[d.Name] / (tr.Schedule.Makespan * float64(d.Slots))
		}
	}
	return out
}
