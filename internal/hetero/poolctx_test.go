package hetero

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelForCtxVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 500
		var visited [n]int32
		err := ParallelForCtx(context.Background(), workers, n, func(_, i int) {
			atomic.AddInt32(&visited[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range visited {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var calls int64
		err := ParallelForCtx(ctx, workers, 1000, func(_, _ int) {
			atomic.AddInt64(&calls, 1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls != 0 {
			t.Fatalf("workers=%d: fn ran %d times on a cancelled context", workers, calls)
		}
	}
}

func TestParallelForCtxMidFlightCancel(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1 << 20
		var calls int64
		err := ParallelForCtx(ctx, workers, n, func(_, _ int) {
			if atomic.AddInt64(&calls, 1) == 10 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Workers stop claiming after the cancel; at most the in-flight
		// items finish, nowhere near the full range.
		if calls >= n/2 {
			t.Fatalf("workers=%d: %d of %d items ran after cancellation", workers, calls, n)
		}
	}
}

func TestParallelForCtxZeroItems(t *testing.T) {
	called := false
	if err := ParallelForCtx(context.Background(), 4, 0, func(_, _ int) { called = true }); err != nil {
		t.Fatalf("n=0: err = %v", err)
	}
	if called {
		t.Fatal("fn called for an empty range")
	}
}
