package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qe"
)

// TestV1LegacyEquivalence asserts every endpoint answers identically under
// its /v1 route and its legacy alias — same status, same body — and that
// only the legacy alias carries the deprecation headers pointing at its
// successor.
func TestV1LegacyEquivalence(t *testing.T) {
	s, _, _ := testServer(t)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	paths := []string{
		"/healthz",
		"/distance?u=0&v=5",
		"/path?u=0&v=5",
		"/mcb/cycle?i=0",
		"/distance?u=zero&v=1", // error bodies must match too
		"/mcb/cycle?i=99999",
	}
	for _, p := range paths {
		legacy := fetch(t, ts, p)
		v1 := fetch(t, ts, "/v1"+p)
		if legacy.status != v1.status {
			t.Fatalf("%s: legacy status %d, /v1 status %d", p, legacy.status, v1.status)
		}
		if legacy.body != v1.body {
			t.Fatalf("%s: legacy body %q != /v1 body %q", p, legacy.body, v1.body)
		}
		base := strings.SplitN(p, "?", 2)[0]
		if legacy.deprecation != "true" {
			t.Fatalf("%s: legacy route missing Deprecation header", p)
		}
		if legacy.sunset != legacySunset {
			t.Fatalf("%s: legacy Sunset = %q, want %q", p, legacy.sunset, legacySunset)
		}
		if want := fmt.Sprintf("</v1%s>; rel=\"successor-version\"", base); legacy.link != want {
			t.Fatalf("%s: legacy Link = %q, want %q", p, legacy.link, want)
		}
		if v1.deprecation != "" || v1.link != "" || v1.sunset != "" {
			t.Fatalf("/v1%s: versioned route must not carry deprecation headers (got %q, %q, %q)",
				p, v1.deprecation, v1.link, v1.sunset)
		}
	}

	// POST endpoint: same body both ways, deprecation only on legacy.
	body := `{"sources":[0,3],"targets":[1,5]}`
	lr, _ := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	lb, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	vr, _ := ts.Client().Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	vb, _ := io.ReadAll(vr.Body)
	vr.Body.Close()
	if lr.StatusCode != 200 || vr.StatusCode != 200 || string(lb) != string(vb) {
		t.Fatalf("batch: legacy (%d, %q) vs v1 (%d, %q)", lr.StatusCode, lb, vr.StatusCode, vb)
	}
	if lr.Header.Get("Deprecation") != "true" || vr.Header.Get("Deprecation") != "" {
		t.Fatal("batch deprecation headers wrong way round")
	}

	// Both spellings of an endpoint feed one metrics family.
	stats := getJSON(t, ts, "/v1/stats", 200)
	if _, ok := stats["oracled.distance.requests"]; !ok {
		t.Fatalf("stats missing shared counter: %v", stats)
	}
}

type fetched struct {
	status                    int
	body                      string
	deprecation, link, sunset string
}

func fetch(t *testing.T, ts *httptest.Server, path string) fetched {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return fetched{resp.StatusCode, string(b), resp.Header.Get("Deprecation"),
		resp.Header.Get("Link"), resp.Header.Get("Sunset")}
}

// TestErrorEnvelope asserts every failure shape renders as the uniform
// {"error", "code", "retry_after_ms"} envelope with the right code.
func TestErrorEnvelope(t *testing.T) {
	s, _, _ := testServer(t)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/distance?u=zero&v=1", 400, "bad_request"},
		{"/v1/mcb/cycle?i=notanumber", 400, "bad_request"},
		{"/v1/mcb/cycle?i=99999", 404, "not_found"},
		{"/v1/batch", 405, "method_not_allowed"}, // GET on a POST-only route
	} {
		out := getJSON(t, ts, tc.path, tc.status)
		if out["error"] == "" || out["error"] == nil {
			t.Fatalf("%s: missing error message: %v", tc.path, out)
		}
		if out["code"] != tc.code {
			t.Fatalf("%s: code = %v, want %q", tc.path, out["code"], tc.code)
		}
		if _, present := out["retry_after_ms"]; present {
			t.Fatalf("%s: retry_after_ms on a non-back-pressure error: %v", tc.path, out)
		}
	}

	// Missing basis → 503 "unavailable", still no retry hint.
	s2, _, _ := testServer(t)
	s2.basis = nil
	ts2 := httptest.NewServer(s2.mux)
	defer ts2.Close()
	out := getJSON(t, ts2, "/v1/mcb/cycle?i=0", 503)
	if out["code"] != "unavailable" {
		t.Fatalf("missing basis: code = %v, want unavailable", out["code"])
	}
}

// TestOverloadEnvelope drives the load-shedding path and asserts the 503
// carries code "overloaded" plus a machine-readable retry_after_ms that
// agrees with the Retry-After header.
func TestOverloadEnvelope(t *testing.T) {
	gate := make(chan struct{})
	began := make(chan struct{}, 1)
	s, _ := testServerEngine(t, func(g *graph.Graph, o *apsp.Oracle) *qe.Engine {
		src := &blockingSource{n: g.NumVertices(), oracle: o, gate: gate, began: began}
		return qe.New(src, qe.Config{CacheRows: 4, MaxInflight: 1, QueueDepth: 0, Reg: obs.NewRegistry()})
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/distance?u=0&v=1")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-began

	resp, err := ts.Client().Get(ts.URL + "/v1/distance?u=2&v=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["code"] != "overloaded" {
		t.Fatalf("code = %v, want overloaded", out["code"])
	}
	if out["retry_after_ms"] != float64(1000) {
		t.Fatalf("retry_after_ms = %v, want 1000", out["retry_after_ms"])
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("first request: %v", err)
	}
}
