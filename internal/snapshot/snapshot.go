// Package snapshot implements the versioned binary container format that
// persists built oracles to disk, separating the expensive build phase
// (ear contraction, per-BCC Dijkstra sweeps, the articulation table) from
// serving: a CI or offline job writes the snapshot once, and every daemon
// restart loads it back with zero recomputation.
//
// The container is deliberately dumb — it knows nothing about oracles. A
// file is
//
//	magic "EARSNAPS" | uint32 format version | uint32 section count |
//	section table | section payloads
//
// where each table entry is a fixed 32-byte record (8-byte NUL-padded
// name, uint64 offset, uint64 length, uint64 CRC-64/ECMA checksum) and
// every integer is little-endian. Each section's checksum is verified on
// open, so corruption anywhere in a payload surfaces as ErrChecksum
// before a single byte is decoded; truncation, bad offsets, and malformed
// structure surface as ErrCorrupt; foreign files as ErrBadMagic; files
// from an incompatible release as ErrVersionSkew. Loading never panics on
// arbitrary bytes.
//
// Sections are built with an Encoder (append-only primitive writer) and
// consumed with a Decoder (bounds-checked primitive reader with a sticky
// error), which keeps the per-type encode hooks in internal/graph,
// internal/ear, and internal/apsp short and symmetric.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

const (
	// Magic identifies an oracle snapshot file. It never changes.
	Magic = "EARSNAPS"
	// Version is the container format version. It bumps only when the
	// container layout itself (header, table, primitive encoding)
	// changes; payload evolution is versioned by the writing package
	// inside its own sections.
	Version = 1

	headerLen  = len(Magic) + 4 + 4 // magic + version + section count
	entryLen   = 32                 // name[8] + offset + length + checksum
	nameLen    = 8
	maxSection = 1 << 10 // sanity bound on the section count
)

// Typed failures of the snapshot surface. Callers match them with
// errors.Is; every error returned by this package wraps exactly one.
var (
	// ErrBadMagic reports that the input is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersionSkew reports a container (or payload) format version this
	// build does not understand.
	ErrVersionSkew = errors.New("snapshot: unsupported format version")
	// ErrChecksum reports that a section's payload does not match its
	// recorded checksum — the file was corrupted after it was written.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrCorrupt reports structural damage: truncation, out-of-bounds
	// section table entries, missing sections, or payloads that decode to
	// impossible values.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated")
)

// Corruptf builds an error wrapping ErrCorrupt, for decode hooks that
// find structurally impossible payloads.
func Corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Writer accumulates named sections and serialises them with a checksummed
// table. Sections are written in the order they were created.
type Writer struct {
	names []string
	secs  []*Encoder
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Section starts a new section and returns its encoder. Names must be
// 1..8 bytes and unique; violations are programmer errors and panic.
func (w *Writer) Section(name string) *Encoder {
	if len(name) == 0 || len(name) > nameLen {
		panic(fmt.Sprintf("snapshot: section name %q must be 1..%d bytes", name, nameLen))
	}
	for _, n := range w.names {
		if n == name {
			panic(fmt.Sprintf("snapshot: duplicate section %q", name))
		}
	}
	e := &Encoder{}
	w.names = append(w.names, name)
	w.secs = append(w.secs, e)
	return e
}

// WriteTo serialises the container: header, section table, payloads.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	head := make([]byte, 0, headerLen+entryLen*len(w.secs))
	head = append(head, Magic...)
	head = binary.LittleEndian.AppendUint32(head, Version)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(w.secs)))
	off := uint64(headerLen + entryLen*len(w.secs))
	for i, e := range w.secs {
		var name [nameLen]byte
		copy(name[:], w.names[i])
		head = append(head, name[:]...)
		head = binary.LittleEndian.AppendUint64(head, off)
		head = binary.LittleEndian.AppendUint64(head, uint64(len(e.b)))
		head = binary.LittleEndian.AppendUint64(head, crc64.Checksum(e.b, crcTable))
		off += uint64(len(e.b))
	}
	var total int64
	n, err := out.Write(head)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range w.secs {
		n, err := out.Write(e.b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Reader parses a container, verifying every section checksum up front.
type Reader struct {
	secs map[string][]byte
}

// NewReader reads the whole stream and validates the container: magic,
// version, table bounds, and the checksum of every section.
func NewReader(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("snapshot: %d-byte input: %w", len(data), ErrBadMagic)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: magic %q: %w", data[:len(Magic)], ErrBadMagic)
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("snapshot: truncated header: %w", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(Magic):]); v != Version {
		return nil, fmt.Errorf("snapshot: container version %d, this build reads %d: %w", v, Version, ErrVersionSkew)
	}
	nsec := binary.LittleEndian.Uint32(data[len(Magic)+4:])
	if nsec > maxSection {
		return nil, fmt.Errorf("snapshot: %d sections: %w", nsec, ErrCorrupt)
	}
	tableEnd := headerLen + entryLen*int(nsec)
	if len(data) < tableEnd {
		return nil, fmt.Errorf("snapshot: truncated section table: %w", ErrCorrupt)
	}
	rd := &Reader{secs: make(map[string][]byte, nsec)}
	for i := 0; i < int(nsec); i++ {
		ent := data[headerLen+entryLen*i:]
		name := string(trimNUL(ent[:nameLen]))
		off := binary.LittleEndian.Uint64(ent[nameLen:])
		length := binary.LittleEndian.Uint64(ent[nameLen+8:])
		sum := binary.LittleEndian.Uint64(ent[nameLen+16:])
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("snapshot: section %q spans [%d, %d+%d) outside the file: %w",
				name, off, off, length, ErrCorrupt)
		}
		payload := data[off : off+length]
		if crc64.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("snapshot: section %q: %w", name, ErrChecksum)
		}
		rd.secs[name] = payload
	}
	return rd, nil
}

func trimNUL(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return b
}

// Has reports whether the container holds a section with that name.
func (r *Reader) Has(name string) bool { _, ok := r.secs[name]; return ok }

// Section returns a decoder over the named payload, or ErrCorrupt if the
// section is absent.
func (r *Reader) Section(name string) (*Decoder, error) {
	b, ok := r.secs[name]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %q: %w", name, ErrCorrupt)
	}
	return &Decoder{b: b}, nil
}

// Encoder is an append-only little-endian primitive writer backing one
// section.
type Encoder struct{ b []byte }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.b) }

// U8 appends a single byte (compact enum tags, e.g. delta kinds).
func (e *Encoder) U8(v uint8) { e.b = append(e.b, v) }

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F32 appends a float32 by bit pattern (compact distance tables).
func (e *Encoder) F32(v float32) { e.U32(math.Float32bits(v)) }

// I32s appends a length-prefixed int32 slice.
func (e *Encoder) I32s(s []int32) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I32(v)
	}
}

// F64s appends a length-prefixed float64 slice.
func (e *Encoder) F64s(s []float64) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.F64(v)
	}
}

// F32s appends a length-prefixed float32 slice.
func (e *Encoder) F32s(s []float32) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.F32(v)
	}
}

// Str appends a length-prefixed byte string (job metadata: identifiers,
// kind tags, terminal error messages).
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bools appends a length-prefixed bit-packed bool slice.
func (e *Encoder) Bools(s []bool) {
	e.U64(uint64(len(s)))
	var cur byte
	for i, v := range s {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.b = append(e.b, cur)
			cur = 0
		}
	}
	if len(s)%8 != 0 {
		e.b = append(e.b, cur)
	}
}

// Decoder is the bounds-checked mirror of Encoder. The first failed read
// sets a sticky ErrCorrupt; subsequent reads return zero values, so decode
// hooks can read a whole structure and check Err once at the end.
type Decoder struct {
	b   []byte
	err error
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) }

// Finish reports the sticky error, or ErrCorrupt if unread bytes remain —
// a decoded structure must account for its whole section.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("snapshot: %d trailing bytes after decode: %w", len(d.b), ErrCorrupt)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: truncated %s: %w", what, ErrCorrupt)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail(what)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// U8 reads a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "uint8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "uint64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads a float32.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Count reads a u64 element count and validates it against the bytes
// actually remaining (each element occupying at least elemBytes), so a
// corrupt count can never drive a huge allocation.
func (d *Decoder) Count(elemBytes int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64(len(d.b)/elemBytes) {
		d.fail(fmt.Sprintf("count %d (elem %dB, %dB left)", n, elemBytes, len(d.b)))
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed int32 slice.
func (d *Decoder) I32s() []int32 {
	n := d.Count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	return out
}

// F64s reads a length-prefixed float64 slice.
func (d *Decoder) F64s() []float64 {
	n := d.Count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// F32s reads a length-prefixed float32 slice.
func (d *Decoder) F32s() []float32 {
	n := d.Count(4)
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.F32()
	}
	return out
}

// Str reads a length-prefixed byte string.
func (d *Decoder) Str() string {
	n := d.Count(1)
	if d.err != nil {
		return ""
	}
	b := d.take(n, "string")
	return string(b)
}

// Bools reads a length-prefixed bit-packed bool slice.
func (d *Decoder) Bools() []bool {
	n64 := d.U64()
	if d.err != nil {
		return nil
	}
	nbytes := (n64 + 7) / 8
	if nbytes > uint64(len(d.b)) {
		d.fail(fmt.Sprintf("bool slice of %d", n64))
		return nil
	}
	raw := d.take(int(nbytes), "bool slice")
	out := make([]bool, n64)
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}
