// Package core is the high-level entry point to the paper's contribution:
// ear-decomposition-accelerated all-pairs shortest paths (Section 2) and
// minimum weight cycle basis computation (Section 3) on large sparse
// graphs, in one call each.
//
// Both algorithms share the paper's three-phase blueprint:
//
//	preprocess — split into biconnected components and contract every
//	             maximal chain of degree-2 vertices into one weighted edge
//	             (the reduced graph G^r);
//	process    — run the path computation only on G^r, in parallel;
//	postprocess— extend the answers back to the full graph in linear time
//	             (anchor formulas for APSP, chain substitution for MCB).
//
// The lower-level packages remain available for fine-grained control:
// internal/ear (decomposition and reduction), internal/apsp, internal/mcb,
// internal/hetero (work queue and device models).
package core

import (
	"context"
	"fmt"

	"repro/internal/apsp"
	"repro/internal/ear"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/mcb"
)

// ShortestPaths computes an all-pairs shortest path oracle for g using the
// ear-decomposition algorithm with the given number of parallel workers
// (0 selects GOMAXPROCS). The returned oracle answers Query(u,v) in O(1)
// using O(a² + Σ nᵢ²) memory instead of O(n²). It is ShortestPathsCtx with
// a background context.
func ShortestPaths(g *graph.Graph, workers int) (*apsp.Oracle, error) {
	return ShortestPathsCtx(context.Background(), g, workers)
}

// ShortestPathsCtx is ShortestPaths with cooperative cancellation: the
// oracle build checks ctx between biconnected components and between the
// per-source Dijkstra units inside each, so a cancelled request or an
// expired deadline abandons the build promptly with the context error.
func ShortestPathsCtx(ctx context.Context, g *graph.Graph, workers int) (*apsp.Oracle, error) {
	return ShortestPathsWith(ctx, g, apsp.Options{Workers: workers})
}

// ShortestPathsWith is ShortestPathsCtx with the full option set — worker
// count plus the Compact32 float32-table mode (see apsp.Options for the
// accuracy policy).
func ShortestPathsWith(ctx context.Context, g *graph.Graph, opts apsp.Options) (*apsp.Oracle, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opts.Workers <= 0 {
		opts.Workers = hetero.Workers()
	}
	return apsp.NewOracleOpts(ctx, g, opts)
}

// MinimumCycleBasis computes a minimum weight cycle basis of g with the
// ear-decomposition reduction enabled. Use MinimumCycleBasisOpts for
// platform selection and ablations.
func MinimumCycleBasis(g *graph.Graph) (*mcb.Result, error) {
	return MinimumCycleBasisOpts(g, mcb.Options{
		UseEar:  true,
		Workers: hetero.Workers(),
	})
}

// MinimumCycleBasisCtx is MinimumCycleBasis with cooperative cancellation
// (see MinimumCycleBasisOptsCtx).
func MinimumCycleBasisCtx(ctx context.Context, g *graph.Graph) (*mcb.Result, error) {
	return MinimumCycleBasisOptsCtx(ctx, g, mcb.Options{
		UseEar:  true,
		Workers: hetero.Workers(),
	})
}

// MinimumCycleBasisOpts is MinimumCycleBasis with explicit options. It is
// MinimumCycleBasisOptsCtx with a background context.
func MinimumCycleBasisOpts(g *graph.Graph, opts mcb.Options) (*mcb.Result, error) {
	return MinimumCycleBasisOptsCtx(context.Background(), g, opts)
}

// MinimumCycleBasisOptsCtx is MinimumCycleBasisOpts honouring ctx: the
// pipeline checks the context between components, between De Pina phases,
// and between the parallel work units of each phase, so cancellation stops
// candidate-tree construction mid-flight. On cancellation it returns an
// error wrapping ctx.Err().
func MinimumCycleBasisOptsCtx(ctx context.Context, g *graph.Graph, opts mcb.Options) (*mcb.Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	res, err := mcb.ComputeCtx(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	if want := mcb.Dim(g); res.Dim != want {
		return nil, fmt.Errorf("core: internal error: basis dimension %d, want %d", res.Dim, want)
	}
	return res, nil
}

// Reduce exposes the preprocessing stage on its own: the reduced graph of
// g with degree-2 chains contracted, in APSP mode (parallel chains
// collapsed to the cheapest).
func Reduce(g *graph.Graph) (*ear.Reduced, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	return ear.Reduce(g, ear.APSP), nil
}

// EarDecomposition returns the ears of a biconnected graph, or an error if
// the graph is not biconnected (an ear decomposition exists iff the graph
// is two-edge-connected).
func EarDecomposition(g *graph.Graph) ([]ear.Ear, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	return ear.Decompose(g)
}
