package apsp

import (
	"repro/internal/bcc"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/sssp"
)

// NewOracleSim builds the general-graph oracle with the processing phase
// scheduled on the simulated heterogeneous platform exactly as Section 2.3
// describes: "the workunits correspond to the processing with respect to
// each biconnected component of the graph ... sorted according to the size
// of the biconnected component ... so that the GPU starts accessing the
// bigger workunits". Each unit runs the full per-source sweep of one
// block's reduced graph — heap Dijkstra on the CPU side, the frontier
// kernel on the GPU side. It returns the oracle and the virtual schedule.
func NewOracleSim(g *graph.Graph, devices []*hetero.Device) (*Oracle, *hetero.Schedule) {
	dec := bcc.Compute(g)
	bct := bcc.BuildBlockCutTree(g, dec)
	o := &Oracle{G: g, Dec: dec, BCT: bct, numA: len(bct.CutVertices)}
	subs := dec.Subgraphs(g)
	o.Blocks = make([]*BlockAPSP, len(subs))
	units := make([]hetero.Unit, len(subs))
	for i, sub := range subs {
		blk := &BlockAPSP{Sub: sub}
		o.Blocks[i] = blk
		// Unit size: the block's edge count, the paper's sorting key.
		units[i] = hetero.Unit{ID: int32(i), Size: int64(sub.G.NumEdges())}
	}
	sched := hetero.Run(units, devices, func(u hetero.Unit, d *hetero.Device) hetero.Cost {
		blk := o.Blocks[u.ID]
		if d.Big {
			blk.Ear = newEarAPSPFrontier(blk.Sub.G)
			// frontier kernels: one launch per sweep, summed inside
			return hetero.Cost{Ops: blk.Ear.Relaxations, Launches: blk.Ear.sweeps}
		}
		blk.Ear = NewEarAPSP(blk.Sub.G)
		return hetero.Cost{Ops: blk.Ear.Relaxations, Launches: 1}
	})
	for _, blk := range o.Blocks {
		o.Relaxations += blk.Ear.Relaxations
	}
	o.buildLocIndex()
	o.buildForest()
	o.buildAPTable()
	return o, sched
}

// PostProcessSim runs Phase III of Algorithm 1 (UPDATE_DISTANCE from every
// original vertex) as work-units on the simulated platform — the paper
// labels the post-processing {cpu,gpu} too. Rows are computed into a
// rotating buffer (the phase's output is consumed streamily by the
// harness), and each unit's cost is the table-operation count Row reports.
func (a *EarAPSP) PostProcessSim(devices []*hetero.Device) *hetero.Schedule {
	n := a.G.NumVertices()
	units := make([]hetero.Unit, n)
	for v := 0; v < n; v++ {
		units[v] = hetero.Unit{ID: int32(v), Size: int64(n)}
	}
	buf := make([]graph.Weight, n)
	return hetero.Run(units, devices, func(u hetero.Unit, d *hetero.Device) hetero.Cost {
		ops := a.Row(u.ID, buf)
		return hetero.Cost{Ops: ops, Launches: 1}
	})
}

// newEarAPSPFrontier is NewEarAPSP with the GPU-structured per-source
// kernel (Harish–Narayanan frontier relaxation) instead of heap Dijkstra,
// recording the total sweep count for launch accounting.
func newEarAPSPFrontier(g *graph.Graph) *EarAPSP {
	red := reduceForAPSP(g)
	a := &EarAPSP{G: g, Red: red, nr: red.R.NumVertices()}
	a.SR = make([]graph.Weight, a.nr*a.nr)
	for s := 0; s < a.nr; s++ {
		res, sweeps := sssp.FrontierSweeps(red.R, int32(s))
		copy(a.SR[s*a.nr:(s+1)*a.nr], res.Dist)
		a.Relaxations += res.Relaxations
		a.sweeps += sweeps
	}
	return a
}
