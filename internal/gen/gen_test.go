package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if w := r.Weight(5); w < 1 || w > 5 || w != float64(int(w)) {
			t.Fatalf("Weight out of range: %v", w)
		}
	}
	if w := r.Weight(0); w != 1 {
		t.Fatal("Weight(0) should be 1")
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, x := range p {
		if seen[x] {
			t.Fatal("duplicate in permutation")
		}
		seen[x] = true
	}
}

func connected(g *graph.Graph) bool {
	return graph.CountComponents(g) <= 1
}

func simple(g *graph.Graph) bool {
	seen := make(map[[2]int32]bool)
	for _, e := range g.Edges() {
		if e.U == e.V {
			return false
		}
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[[2]int32{a, b}] {
			return false
		}
		seen[[2]int32{a, b}] = true
	}
	return true
}

func TestGNM(t *testing.T) {
	cfg := Config{MaxWeight: 5}
	for seed := uint64(0); seed < 10; seed++ {
		rng := NewRNG(seed)
		n := 5 + rng.Intn(100)
		m := n + rng.Intn(3*n)
		g := GNM(n, m, cfg, rng)
		if g.NumVertices() != n || g.NumEdges() != m {
			t.Fatalf("size wrong: %d/%d vs %d/%d", g.NumVertices(), g.NumEdges(), n, m)
		}
		if !connected(g) {
			t.Fatalf("seed %d: GNM disconnected", seed)
		}
		if !simple(g) {
			t.Fatalf("seed %d: GNM not simple", seed)
		}
	}
	// m below the tree bound is raised to n-1
	g := GNM(10, 0, cfg, NewRNG(1))
	if g.NumEdges() != 9 {
		t.Fatalf("tree fallback wrong: %d edges", g.NumEdges())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	cfg := Config{MaxWeight: 3}
	g := PreferentialAttachment(300, 2, cfg, NewRNG(5))
	if g.NumVertices() != 300 {
		t.Fatalf("n wrong")
	}
	if !connected(g) {
		t.Fatal("PA disconnected")
	}
	if !simple(g) {
		t.Fatal("PA not simple")
	}
	// heavy tail: max degree well above the mean
	s := graph.ComputeStats(g)
	mean := 2 * float64(g.NumEdges()) / 300
	if float64(s.MaxDegree) < 3*mean {
		t.Fatalf("degree distribution too flat: max %d, mean %.1f", s.MaxDegree, mean)
	}
}

func TestRandomGeometric(t *testing.T) {
	cfg := Config{MaxWeight: 4}
	g := RandomGeometric(400, 6, cfg, NewRNG(9))
	if g.NumVertices() != 400 {
		t.Fatal("n wrong")
	}
	if !connected(g) {
		t.Fatal("geometric graph should be connected after patching")
	}
	avg := 2 * float64(g.NumEdges()) / 400
	if avg < 2 || avg > 14 {
		t.Fatalf("average degree %v far from requested 6", avg)
	}
}

func TestGridAndTriangulated(t *testing.T) {
	cfg := Config{MaxWeight: 2}
	g := Grid(4, 5, cfg, NewRNG(1))
	if g.NumVertices() != 20 || g.NumEdges() != 4*4+5*3 {
		t.Fatalf("grid size wrong: %d %d", g.NumVertices(), g.NumEdges())
	}
	tg := TriangulatedGrid(4, 5, cfg, NewRNG(1))
	if tg.NumEdges() != g.NumEdges()+3*4 {
		t.Fatalf("triangulated edges %d", tg.NumEdges())
	}
	if !connected(tg) {
		t.Fatal("grid disconnected")
	}
}

func TestPlanarEars(t *testing.T) {
	cfg := Config{MaxWeight: 6}
	for seed := uint64(0); seed < 6; seed++ {
		g := PlanarEars(100, 2, cfg, NewRNG(seed))
		if !connected(g) {
			t.Fatalf("seed %d: disconnected", seed)
		}
		// biconnected by construction: no articulation points means every
		// vertex has degree >= 2
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			if g.Degree(v) < 2 {
				t.Fatalf("seed %d: vertex %d has degree %d", seed, v, g.Degree(v))
			}
		}
		// Euler bound for simple planar graphs: m <= 3n-6 (ear insertion
		// can create parallel chains but interior vertices keep it sparse)
		if g.NumEdges() > 3*g.NumVertices() {
			t.Fatalf("seed %d: too dense to be planar-ish", seed)
		}
	}
}

func TestRingAndComplete(t *testing.T) {
	cfg := Config{MaxWeight: 1}
	r := Ring(7, cfg, NewRNG(2))
	if r.NumEdges() != 7 {
		t.Fatal("ring edges wrong")
	}
	for v := int32(0); v < 7; v++ {
		if r.Degree(v) != 2 {
			t.Fatal("ring degree wrong")
		}
	}
	k := Complete(6, cfg, NewRNG(2))
	if k.NumEdges() != 15 {
		t.Fatal("K6 edges wrong")
	}
}

func TestSubdivide(t *testing.T) {
	cfg := Config{MaxWeight: 5}
	rng := NewRNG(11)
	base := GNM(20, 40, cfg, rng)
	sub := Subdivide(base, 1.0, 3, cfg, rng)
	if sub.NumVertices() <= base.NumVertices() {
		t.Fatal("subdivision added no vertices")
	}
	// every added vertex has degree exactly 2
	for v := int32(base.NumVertices()); v < int32(sub.NumVertices()); v++ {
		if sub.Degree(v) != 2 {
			t.Fatalf("interior vertex %d has degree %d", v, sub.Degree(v))
		}
	}
	// edge count grows by exactly the added vertex count
	added := sub.NumVertices() - base.NumVertices()
	if sub.NumEdges() != base.NumEdges()+added {
		t.Fatalf("edges %d, want %d", sub.NumEdges(), base.NumEdges()+added)
	}
	if !connected(sub) {
		t.Fatal("subdivision broke connectivity")
	}
	// fraction 0 is the identity
	if same := Subdivide(base, 0, 3, cfg, rng); same != base {
		t.Fatal("zero fraction should return the input unchanged")
	}
}

func TestAttachPendants(t *testing.T) {
	cfg := Config{MaxWeight: 2}
	rng := NewRNG(13)
	base := Ring(10, cfg, rng)
	g := AttachPendants(base, 15, 3, cfg, rng)
	if g.NumVertices() != 25 {
		t.Fatalf("vertices %d, want 25", g.NumVertices())
	}
	if g.NumEdges() != base.NumEdges()+15 {
		t.Fatal("each pendant should add one edge")
	}
	if !connected(g) {
		t.Fatal("pendants broke connectivity")
	}
}

func TestChainBlocks(t *testing.T) {
	cfg := Config{MaxWeight: 3}
	rng := NewRNG(17)
	blocks := []*graph.Graph{Ring(5, cfg, rng), Ring(6, cfg, rng), Ring(7, cfg, rng)}
	g := ChainBlocks(blocks, cfg, rng)
	// each join merges one vertex
	if g.NumVertices() != 5+6+7-2 {
		t.Fatalf("vertices %d", g.NumVertices())
	}
	if g.NumEdges() != 5+6+7 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	if !connected(g) {
		t.Fatal("chained blocks disconnected")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	cfg := Config{MaxWeight: 9}
	rng := NewRNG(19)
	g := GNM(30, 60, cfg, rng)
	h, perm := Relabel(g, rng)
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("relabel changed size")
	}
	for i, e := range g.Edges() {
		he := h.Edge(int32(i))
		if he.U != perm[e.U] || he.V != perm[e.V] || he.W != e.W {
			t.Fatal("relabel broke edge mapping")
		}
	}
	// degree multiset preserved
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.Degree(v) != h.Degree(perm[v]) {
			t.Fatal("degree not preserved under relabel")
		}
	}
}

// Property: generators are pure functions of their seed.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Config{MaxWeight: 7}
		a := GNM(25, 50, cfg, NewRNG(seed))
		b := GNM(25, 50, cfg, NewRNG(seed))
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		for i := range a.Edges() {
			if a.Edge(int32(i)) != b.Edge(int32(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	cfg := Config{MaxWeight: 4}
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		g := WattsStrogatz(120, 2, p, cfg, NewRNG(uint64(p*100)+3))
		if g.NumVertices() != 120 {
			t.Fatal("n wrong")
		}
		if !connected(g) {
			t.Fatalf("p=%v: disconnected", p)
		}
		if !simple(g) {
			t.Fatalf("p=%v: not simple", p)
		}
		// ~2k edges per vertex in expectation (rewiring preserves count
		// modulo collisions)
		if g.NumEdges() < 120 || g.NumEdges() > 240 {
			t.Fatalf("p=%v: %d edges", p, g.NumEdges())
		}
	}
	// p=0 is the pure lattice: exactly n·k edges, all degrees 2k
	g := WattsStrogatz(50, 2, 0, cfg, NewRNG(1))
	if g.NumEdges() != 100 {
		t.Fatalf("lattice edges %d", g.NumEdges())
	}
	for v := int32(0); v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree %d at %d", g.Degree(v), v)
		}
	}
}

func TestRandomTree(t *testing.T) {
	cfg := Config{MaxWeight: 3}
	g := RandomTree(80, cfg, NewRNG(4))
	if g.NumEdges() != 79 {
		t.Fatalf("tree edges %d", g.NumEdges())
	}
	if !connected(g) {
		t.Fatal("tree disconnected")
	}
}
