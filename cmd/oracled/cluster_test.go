package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qe"
	"repro/internal/registry"
	"repro/internal/shard"
)

// testFrontend boots a complete sharded deployment in-process: a
// 2-shard plan carved from one oracle, one httptest daemon per shard,
// and an oracled server in frontend mode over the fan-out source. The
// returned shard servers can be killed individually to exercise the
// failure surface. epochSkew offsets the shard snapshots' epoch from
// the plan's, for the mismatch test.
func testFrontend(t *testing.T, epochSkew uint64) (*server, *graph.Graph, []graph.Weight, []*httptest.Server) {
	t.Helper()
	cfg := gen.Config{MaxWeight: 9}
	rng := gen.NewRNG(7)
	g := gen.BridgeChain(4, 4, cfg, rng)
	o := apsp.NewOracle(g)
	p, err := shard.PlanShards(o, shard.PlanOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, p.NumShards)
	addrs := make([]string, p.NumShards)
	for sid := int32(0); sid < p.NumShards; sid++ {
		var buf bytes.Buffer
		meta := apsp.ShardMeta{Epoch: p.Epoch + epochSkew, Shard: sid, NumShards: p.NumShards}
		if _, err := o.WriteShardSnapshot(&buf, meta, p.OwnedMask(sid)); err != nil {
			t.Fatal(err)
		}
		sb, err := apsp.ReadShardSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		shard.NewHandler(sb).Register(mux)
		servers[sid] = httptest.NewServer(mux)
		addrs[sid] = servers[sid].URL
	}
	t.Cleanup(func() {
		for _, ts := range servers {
			if ts != nil {
				ts.Close()
			}
		}
	})
	reg := obs.NewRegistry()
	src, err := shard.NewRemoteSource(shard.SourceConfig{
		Plan: p, Addrs: addrs, MaxRetries: -1, Reg: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	// CacheRows negative: every request re-runs the fan-out, so a killed
	// shard is visible immediately instead of hiding behind cached rows.
	engine := qe.New(src, qe.Config{CacheRows: -1, MaxInflight: 8, QueueDepth: 64, Reg: reg})
	rg, err := registry.Open(registry.Config{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	rg.AddRemote(registry.DefaultGraph, engine, p.NumVertices)
	s := newServer(rg, nil, nil, reg)
	s.enableCluster(src)
	return s, g, apsp.FloydWarshall(g), servers
}

func TestClusterFrontendServes(t *testing.T) {
	s, g, ref, _ := testFrontend(t, 0)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	n := g.NumVertices()
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 2 {
			out := getJSON(t, ts, fmt.Sprintf("/v1/distance?u=%d&v=%d", u, v), 200)
			want := ref[u*n+v]
			if want >= apsp.Inf {
				if out["reachable"] != false {
					t.Fatalf("distance(%d,%d): %v, want unreachable", u, v, out)
				}
				continue
			}
			if got := out["distance"].(float64); got != want {
				t.Fatalf("distance(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}

	// /v1/batch through the same fan-out.
	body := strings.NewReader(`{"sources":[0,5],"targets":[1,9]}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The health surface reports the plan's vertex count for the default
	// graph even though no local graph exists.
	h := getJSON(t, ts, "/v1/healthz", 200)
	if int(h["vertices"].(float64)) != n {
		t.Fatalf("healthz vertices = %v, want %d", h["vertices"], n)
	}
}

func TestClusterSurface(t *testing.T) {
	s, _, _, _ := testFrontend(t, 0)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	c := getJSON(t, ts, "/v1/cluster", 200)
	if int(c["num_shards"].(float64)) != 2 || int(c["total"].(float64)) != 2 {
		t.Fatalf("cluster: %v", c)
	}
	if c["epoch"].(float64) == 0 {
		t.Fatalf("cluster epoch missing: %v", c)
	}
	items := c["items"].([]interface{})
	if len(items) != 2 {
		t.Fatalf("cluster items: %v", items)
	}
	for i, it := range items {
		row := it.(map[string]interface{})
		if int(row["id"].(float64)) != i || row["healthy"] != true || row["addr"] == "" {
			t.Fatalf("shard row %d: %v", i, row)
		}
		if int(row["blocks"].(float64)) <= 0 {
			t.Fatalf("shard row %d owns no blocks: %v", i, row)
		}
	}
	if _, ok := c["next_cursor"]; ok {
		t.Fatalf("single page must omit next_cursor: %v", c)
	}

	// Cursor pagination: limit=1 pages the two shards without overlap.
	p1 := getJSON(t, ts, "/v1/cluster?limit=1", 200)
	if len(p1["items"].([]interface{})) != 1 || p1["next_cursor"] == nil {
		t.Fatalf("page 1: %v", p1)
	}
	p2 := getJSON(t, ts, "/v1/cluster?limit=1&cursor="+p1["next_cursor"].(string), 200)
	id1 := p1["items"].([]interface{})[0].(map[string]interface{})["id"].(float64)
	id2 := p2["items"].([]interface{})[0].(map[string]interface{})["id"].(float64)
	if id1 == id2 {
		t.Fatalf("pages overlap: %v then %v", id1, id2)
	}

	// Per-shard resource, and 404 past the plan.
	d := getJSON(t, ts, "/v1/cluster/shards/1", 200)
	if int(d["id"].(float64)) != 1 || d["epoch"].(float64) != c["epoch"].(float64) {
		t.Fatalf("shard detail: %v", d)
	}
	nf := getJSON(t, ts, "/v1/cluster/shards/9", 404)
	if nf["code"] != "not_found" {
		t.Fatalf("missing shard: %v", nf)
	}
}

func TestClusterShardKilledEnvelope(t *testing.T) {
	s, g, ref, servers := testFrontend(t, 0)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	const dead = 1
	servers[dead].Close()
	servers[dead] = nil

	// Every /v1/distance either still matches the reference (the row
	// never touched the dead shard) or is a 503 with the shard-aware
	// envelope — never a 200 with a wrong answer, never a 500.
	n := g.NumVertices()
	var sawEnvelope bool
	for u := 0; u < n; u++ {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/distance?u=%d&v=%d", ts.URL, u, (u+1)%n))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case 200:
			var out map[string]interface{}
			decodeBody(t, resp, &out)
			if want := ref[u*n+(u+1)%n]; want < apsp.Inf && out["distance"].(float64) != want {
				t.Fatalf("distance(%d) = %v with shard dead, want %v", u, out["distance"], want)
			}
		case 503:
			var env map[string]interface{}
			decodeBody(t, resp, &env)
			if env["code"] != "shard_unavailable" {
				t.Fatalf("code = %v, want shard_unavailable", env["code"])
			}
			if int(env["shard_id"].(float64)) != dead {
				t.Fatalf("shard_id = %v, want %d", env["shard_id"], dead)
			}
			if env["retry_after_ms"].(float64) <= 0 {
				t.Fatalf("no retry_after_ms in %v", env)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After header")
			}
			sawEnvelope = true
		default:
			t.Fatalf("distance(%d): status %d", u, resp.StatusCode)
		}
	}
	if !sawEnvelope {
		t.Fatal("no request produced the shard_unavailable envelope")
	}

	// The cluster surface shows the shard marked unhealthy by the failed
	// fetches, with its last error recorded.
	c := getJSON(t, ts, fmt.Sprintf("/v1/cluster/shards/%d", dead), 200)
	if c["healthy"] != false || c["last_error"] == "" {
		t.Fatalf("dead shard not marked: %v", c)
	}
}

func TestClusterEpochMismatchEnvelope(t *testing.T) {
	s, _, _, _ := testFrontend(t, 3) // shards stamped with a different epoch
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	env := getJSON(t, ts, "/v1/distance?u=0&v=9", 503)
	if env["code"] != "plan_epoch_mismatch" {
		t.Fatalf("code = %v, want plan_epoch_mismatch", env["code"])
	}
	if _, ok := env["shard_id"]; !ok {
		t.Fatalf("no shard_id in %v", env)
	}
}

func TestClusterUnavailableOffFrontend(t *testing.T) {
	s, _, _ := testServer(t) // monolith daemon: no cluster attached
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	for _, path := range []string{"/v1/cluster", "/v1/cluster/shards/0"} {
		env := getJSON(t, ts, path, 503)
		if env["code"] != "unavailable" {
			t.Fatalf("%s: %v", path, env)
		}
	}
}

func TestClusterFrontendRefusesLocalOnly(t *testing.T) {
	s, _, _, _ := testFrontend(t, 0)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	// Path reconstruction and deltas need a local oracle the frontend
	// does not have: 503, not a panic.
	env := getJSON(t, ts, "/v1/path?u=0&v=5", 503)
	if env["code"] != "unavailable" {
		t.Fatalf("path on frontend: %v", env)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/deltas", "application/json",
		strings.NewReader(`{"deltas":[{"op":"weight","edge":0,"weight":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("deltas on frontend: status %d, want 503", resp.StatusCode)
	}
}

// decodeBody decodes one response body as JSON and closes it.
func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
