package qe

import (
	"context"
	"testing"

	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// benchOracle builds a moderately sized multi-block oracle once per
// benchmark binary: chained blocks with injected degree-2 chains, the
// topology the ear reduction is designed for.
func benchOracle(b *testing.B) *apsp.Oracle {
	b.Helper()
	cfg := gen.Config{MaxWeight: 20}
	rng := gen.NewRNG(99)
	g := gen.ChainBlocks([]*graph.Graph{
		gen.PlanarEars(120, 4, cfg, rng),
		gen.GNM(80, 160, cfg, rng),
		gen.Ring(60, cfg, rng),
	}, cfg, rng)
	g = gen.Subdivide(g, 0.4, 2, cfg, rng)
	return apsp.NewOracle(g)
}

// BenchmarkQEQueryWarm measures the steady-state point-query path: every
// row is already cached, so this is admission + cache hit + one read.
func BenchmarkQEQueryWarm(b *testing.B) {
	o := benchOracle(b)
	// 2× headroom: the sharded LRU bounds each shard independently, so an
	// exact-capacity cache can evict under shard imbalance and pollute the
	// warm measurement with rebuilds.
	e := New(o, Config{CacheRows: 2 * o.NumVertices(), MaxInflight: 4, QueueDepth: 64, Reg: obs.NewRegistry()})
	ctx := context.Background()
	n := int32(o.NumVertices())
	for u := int32(0); u < n; u++ { // warm the cache
		if _, err := e.Query(ctx, u, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i) % n
		v := int32(i*7) % n
		if _, err := e.Query(ctx, u, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQEQueryCold measures the uncached path — one row build per
// distinct source — by disabling the cache.
func BenchmarkQEQueryCold(b *testing.B) {
	o := benchOracle(b)
	e := New(o, Config{CacheRows: -1, MaxInflight: 4, QueueDepth: 64, Reg: obs.NewRegistry()})
	ctx := context.Background()
	n := int32(o.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(ctx, int32(i)%n, int32(i+1)%n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQEBatch measures a 64×64 many-to-many batch on a cold cache:
// the deque-scheduled row builds dominate.
func BenchmarkQEBatch(b *testing.B) {
	o := benchOracle(b)
	n := int32(o.NumVertices())
	sources := make([]int32, 64)
	targets := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i*3) % n
		targets[i] = int32(i*5+1) % n
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(o, Config{CacheRows: 16, MaxInflight: 8, QueueDepth: 64, Reg: obs.NewRegistry()})
		b.StartTimer()
		if _, err := e.Batch(ctx, sources, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQEBatchWarm measures the steady-state bulk path: one persistent
// engine, every row cached, so each iteration is admission + per-source
// gathers + the result matrix. Allocations here are the result matrix
// only (2 allocs: row headers + flat backing).
func BenchmarkQEBatchWarm(b *testing.B) {
	o := benchOracle(b)
	n := int32(o.NumVertices())
	sources := make([]int32, 64)
	targets := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i*3) % n
		targets[i] = int32(i*5+1) % n
	}
	e := New(o, Config{CacheRows: int(n), MaxInflight: 8, QueueDepth: 64, Reg: obs.NewRegistry()})
	ctx := context.Background()
	if _, err := e.Batch(ctx, sources, targets); err != nil { // warm rows + scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Batch(ctx, sources, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQERowBuild isolates one oracle row computation, the unit the
// engine schedules.
func BenchmarkQERowBuild(b *testing.B) {
	o := benchOracle(b)
	row := make([]graph.Weight, o.NumVertices())
	n := int32(o.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Row(int32(i)%n, row)
	}
}
