// Social network example: heterogeneous betweenness centrality.
//
// The paper closes by arguing its ear/heterogeneous machinery extends to
// other path-based computations; the authors' companion work applies it to
// betweenness centrality. This example builds a scale-free "collaboration
// network" (preferential attachment, like ca-AstroPh in Table 1), finds
// the most central members with exact Brandes, and compares the virtual
// runtimes of the four platform configurations for the same computation.
package main

import (
	"fmt"
	"time"

	"repro/internal/bc"
	"repro/internal/gen"
	"repro/internal/hetero"
)

func main() {
	cfg := gen.Config{MaxWeight: 1} // hop-count centrality
	rng := gen.NewRNG(404)
	g := gen.PreferentialAttachment(1500, 2, cfg, rng)
	fmt.Printf("network: %d members, %d ties\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	res := bc.Parallel(g, 0)
	fmt.Printf("exact betweenness computed in %v (%d relaxations)\n",
		time.Since(start), res.Relaxations)

	fmt.Println("most central members (bridges between communities):")
	for rank, v := range res.TopK(5) {
		fmt.Printf("  #%d member %4d: centrality %.0f, degree %d\n",
			rank+1, v, res.Scores[v]/2, g.Degree(v))
	}

	fmt.Println("\nvirtual platform comparison (same computation):")
	configs := []struct {
		name string
		devs []*hetero.Device
	}{
		{"sequential", []*hetero.Device{hetero.SequentialCPU()}},
		{"multicore", []*hetero.Device{hetero.MulticoreCPU()}},
		{"gpu", []*hetero.Device{hetero.TeslaK40c()}},
		{"cpu+gpu", []*hetero.Device{hetero.MulticoreCPU(), hetero.TeslaK40c()}},
	}
	var seq float64
	for _, c := range configs {
		_, sched := bc.Sim(g, c.devs)
		if c.name == "sequential" {
			seq = sched.Makespan
		}
		fmt.Printf("  %-11s %8.4f virtual s  (%.2fx)\n", c.name, sched.Makespan, seq/sched.Makespan)
	}
}
