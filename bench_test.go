package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. The benchmarks run the same
// harness code as cmd/earbench at a reduced scale so `go test -bench=.`
// stays tractable; cmd/earbench regenerates the full tables at any scale.

import (
	"testing"

	"repro/internal/apsp"
	"repro/internal/bc"
	"repro/internal/datasets"
	"repro/internal/ds"
	"repro/internal/ear"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/mcb"
	"repro/internal/sssp"
)

const (
	benchScale    = 0.01
	benchMCBScale = 0.012
	benchSeed     = 1
)

// BenchmarkTable1 regenerates the dataset-structure analysis of Table 1:
// BCC decomposition, ear reduction, and the memory model for every
// dataset.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.RunTable1(benchScale, benchSeed)
		if len(rows) != 15 {
			b.Fatal("wrong row count")
		}
	}
}

// fig2Graphs returns one general and one planar dataset at bench scale —
// representative bars of Figures 2 and 3.
func fig2Graphs(b *testing.B) (general, planar *graph.Graph) {
	b.Helper()
	gSpec, err := datasets.ByName("as-22july06")
	if err != nil {
		b.Fatal(err)
	}
	pSpec, err := datasets.ByName("Planar_3")
	if err != nil {
		b.Fatal(err)
	}
	return gSpec.Generate(benchScale*2, benchSeed), pSpec.Generate(benchScale*2, benchSeed)
}

// BenchmarkFig2OursGeneral measures the paper's APSP (build + block-table
// post-processing) on a general graph — the "Our Approach" bar of Figure 2.
func BenchmarkFig2OursGeneral(b *testing.B) {
	g, _ := fig2Graphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := apsp.NewOracle(g)
		o.MaterializeBlockTables(1)
	}
}

// BenchmarkFig2Banerjee measures the Banerjee baseline on the same graph.
func BenchmarkFig2Banerjee(b *testing.B) {
	g, _ := fig2Graphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := apsp.NewBanerjee(g, 1)
		o.MaterializeBlockTables(1)
	}
}

// BenchmarkFig2OursPlanar and BenchmarkFig2Djidjev are the planar pair of
// Figure 2.
func BenchmarkFig2OursPlanar(b *testing.B) {
	_, g := fig2Graphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := apsp.NewOracle(g)
		o.MaterializeBlockTables(1)
	}
}

func BenchmarkFig2Djidjev(b *testing.B) {
	_, g := fig2Graphs(b)
	n := g.NumVertices()
	buf := make([]graph.Weight, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := apsp.NewDjidjev(g, 8, 1)
		for s := 0; s < n; s++ {
			d.Row(int32(s), buf)
		}
	}
}

// BenchmarkFig3MTEPS reports the paper's scalability metric (Figure 3) as
// a custom benchmark metric for the ear APSP on the general graph.
func BenchmarkFig3MTEPS(b *testing.B) {
	g, _ := fig2Graphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := apsp.NewOracle(g)
		o.MaterializeBlockTables(1)
	}
	secPerOp := float64(b.Elapsed().Nanoseconds()) / 1e9 / float64(b.N)
	b.ReportMetric(float64(g.NumEdges())*float64(g.NumVertices())/secPerOp/1e6, "MTEPS")
}

// BenchmarkTable2 runs the MCB measurement of Table 2 (four platforms,
// with/without ear) on one representative dataset per iteration.
func BenchmarkTable2(b *testing.B) {
	spec, err := datasets.ByName("as-22july06")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(benchMCBScale, benchSeed)
	for _, useEar := range []bool{true, false} {
		name := "with-ear"
		if !useEar {
			name = "without-ear"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mcb.Compute(g, mcb.Options{UseEar: useEar, AllPlatforms: true, Seed: benchSeed})
				if res.Dim == 0 {
					b.Fatal("degenerate basis")
				}
			}
		})
	}
}

// BenchmarkFig5 and BenchmarkFig6 exercise the platform comparison of
// Figures 5 and 6: a single MCB execution priced on all four device
// models, reporting the heterogeneous speedup as a metric.
func BenchmarkFig5(b *testing.B) {
	spec, err := datasets.ByName("c-50")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(benchMCBScale, benchSeed)
	var speedup float64
	for i := 0; i < b.N; i++ {
		res := mcb.Compute(g, mcb.Options{UseEar: true, AllPlatforms: true, Seed: benchSeed})
		speedup = res.SimByPlatform[mcb.Sequential] / res.SimByPlatform[mcb.Heterogeneous]
	}
	b.ReportMetric(speedup, "hetero-speedup")
}

func BenchmarkFig6(b *testing.B) {
	spec, err := datasets.ByName("nopoly")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(benchMCBScale, benchSeed)
	var sim float64
	for i := 0; i < b.N; i++ {
		res := mcb.Compute(g, mcb.Options{UseEar: true, Platform: mcb.Heterogeneous, Seed: benchSeed})
		sim = res.SimSeconds
	}
	b.ReportMetric(sim, "virtual-sec")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationReducedDijkstra vs BenchmarkAblationFullDijkstra isolate
// the processing-phase gain of the ear reduction: per-source Dijkstra on
// G^r versus on G.
func BenchmarkAblationReducedDijkstra(b *testing.B) {
	g := ablationGraph()
	red := ear.Reduce(g, ear.APSP)
	r := red.R
	sc := sssp.NewScratch(r.NumVertices())
	dist := make([]graph.Weight, r.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := int32(0); s < int32(r.NumVertices()); s++ {
			sssp.DistancesOnly(r, s, dist, sc)
		}
	}
}

func BenchmarkAblationFullDijkstra(b *testing.B) {
	g := ablationGraph()
	sc := sssp.NewScratch(g.NumVertices())
	dist := make([]graph.Weight, g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := int32(0); s < int32(g.NumVertices()); s++ {
			sssp.DistancesOnly(g, s, dist, sc)
		}
	}
}

func ablationGraph() *graph.Graph {
	cfg := gen.Config{MaxWeight: 20}
	rng := gen.NewRNG(5)
	return gen.Subdivide(gen.GNM(300, 500, cfg, rng), 0.7, 4, cfg, rng)
}

// BenchmarkAblationFVSRoots vs AllRoots: the Horton-root restriction of
// Section 3.2.
func BenchmarkAblationFVSRoots(b *testing.B) {
	g := smallMCBGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcb.Compute(g, mcb.Options{UseEar: true, AllRoots: false, Seed: 3})
	}
}

func BenchmarkAblationAllRoots(b *testing.B) {
	g := smallMCBGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcb.Compute(g, mcb.Options{UseEar: true, AllRoots: true, Seed: 3})
	}
}

func smallMCBGraph() *graph.Graph {
	cfg := gen.Config{MaxWeight: 15}
	rng := gen.NewRNG(9)
	return gen.Subdivide(gen.GNM(120, 220, cfg, rng), 0.5, 2, cfg, rng)
}

// BenchmarkAblationChunkedStore compares the paper's hybrid chunked list
// against a plain slice with tombstones for the candidate scan-and-remove
// access pattern (Section 3.3.2).
func BenchmarkAblationChunkedStore(b *testing.B) {
	const n = 100000
	b.Run("chunked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := ds.NewChunkedList(256)
			for v := uint32(0); v < n; v++ {
				l.Append(v)
			}
			// scan-and-remove sweep: remove every 64th live element
			for k := 0; k < 200; k++ {
				target := uint32(k * 64)
				cur, ok := l.Scan(func(x uint32) bool { return x != target })
				if ok {
					l.Remove(cur)
				}
			}
		}
	})
	b.Run("slice-tombstones", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make([]uint32, n)
			dead := make([]bool, n)
			for v := range s {
				s[v] = uint32(v)
			}
			for k := 0; k < 200; k++ {
				target := uint32(k * 64)
				for idx, v := range s {
					if dead[idx] {
						continue
					}
					if v == target {
						dead[idx] = true
						break
					}
				}
			}
		}
	})
}

// BenchmarkAblationDequeBatch measures scheduling quality versus batch
// size: bigger GPU batches amortise launches but skew the split.
func BenchmarkAblationDequeBatch(b *testing.B) {
	units := make([]hetero.Unit, 2000)
	for i := range units {
		units[i] = hetero.Unit{ID: int32(i), Size: int64(1 + i%17)}
	}
	for _, batch := range []int{16, 256, 1024} {
		b.Run(sizeName(batch), func(b *testing.B) {
			gpu := hetero.TeslaK40c()
			gpu.BatchSize = batch
			devs := []*hetero.Device{hetero.MulticoreCPU(), gpu}
			var makespan float64
			for i := 0; i < b.N; i++ {
				sched := hetero.Run(units, devs, func(u hetero.Unit, d *hetero.Device) hetero.Cost {
					return hetero.Cost{Ops: u.Size * 1000, Launches: 1}
				})
				makespan = sched.Makespan
			}
			b.ReportMetric(makespan*1e3, "virtual-ms")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 16:
		return "batch16"
	case 256:
		return "batch256"
	default:
		return "batch1024"
	}
}

// BenchmarkAblationSortedDeque compares size-sorted against unsorted
// work-unit order (the paper sorts so the GPU starts on the biggest
// units).
func BenchmarkAblationSortedDeque(b *testing.B) {
	skewed := make([]hetero.Unit, 1500)
	for i := range skewed {
		size := int64(1)
		if i%100 == 0 {
			size = 500 // a few huge units
		}
		skewed[i] = hetero.Unit{ID: int32(i), Size: size}
	}
	devs := func() []*hetero.Device {
		return []*hetero.Device{hetero.MulticoreCPU(), hetero.TeslaK40c()}
	}
	b.Run("size-sorted", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			sched := hetero.Run(skewed, devs(), func(u hetero.Unit, d *hetero.Device) hetero.Cost {
				return hetero.Cost{Ops: u.Size * 10000, Launches: 1}
			})
			m = sched.Makespan
		}
		b.ReportMetric(m*1e3, "virtual-ms")
	})
	b.Run("size-blind", func(b *testing.B) {
		blind := make([]hetero.Unit, len(skewed))
		for i, u := range skewed {
			blind[i] = hetero.Unit{ID: u.ID, Size: 1} // hide sizes from the deque
		}
		real := make(map[int32]int64, len(skewed))
		for _, u := range skewed {
			real[u.ID] = u.Size
		}
		var m float64
		for i := 0; i < b.N; i++ {
			sched := hetero.Run(blind, devs(), func(u hetero.Unit, d *hetero.Device) hetero.Cost {
				return hetero.Cost{Ops: real[u.ID] * 10000, Launches: 1}
			})
			m = sched.Makespan
		}
		b.ReportMetric(m*1e3, "virtual-ms")
	})
}

// BenchmarkAblationBCDecomposed vs BCFlat: the block-decomposition gain on
// betweenness centrality — the paper's blueprint transplanted to a third
// path problem.
func BenchmarkAblationBCDecomposed(b *testing.B) {
	g := bcGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Decomposed(g, 1)
	}
}

func BenchmarkAblationBCFlat(b *testing.B) {
	g := bcGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Sequential(g)
	}
}

func bcGraph() *graph.Graph {
	cfg := gen.Config{MaxWeight: 5}
	rng := gen.NewRNG(17)
	blocks := make([]*graph.Graph, 15)
	for i := range blocks {
		blocks[i] = gen.GNM(40, 70, cfg, rng)
	}
	return gen.AttachPendants(gen.ChainBlocks(blocks, cfg, rng), 100, 3, cfg, rng)
}

// BenchmarkEarReduction measures the preprocessing stage alone.
func BenchmarkEarReduction(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := ear.Reduce(g, ear.APSP)
		if red.NumRemoved() == 0 {
			b.Fatal("nothing reduced")
		}
	}
}

// BenchmarkOracleQuery measures post-processing query latency.
func BenchmarkOracleQuery(b *testing.B) {
	g := ablationGraph()
	o := apsp.NewOracle(g)
	n := int32(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i) % n
		v := (u*7 + 13) % n
		o.Query(u, v)
	}
}

// --- SSSP kernel benches ---------------------------------------------------

// BenchmarkSSSPHeap / Dial / Frontier / BFS compare the single-source
// kernels on the same reduced graph (the processing phase's unit of work).
func BenchmarkSSSPHeap(b *testing.B) {
	g := ablationGraph()
	red := ear.Reduce(g, ear.APSP)
	r := red.R
	sc := sssp.NewScratch(r.NumVertices())
	dist := make([]graph.Weight, r.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DistancesOnly(r, int32(i%r.NumVertices()), dist, sc)
	}
}

func BenchmarkSSSPDial(b *testing.B) {
	g := ablationGraph()
	red := ear.Reduce(g, ear.APSP)
	r := red.R
	ok, maxW := sssp.IntegralWeights(r)
	if !ok {
		b.Skip("non-integral weights")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.Dial(r, int32(i%r.NumVertices()), maxW)
	}
}

func BenchmarkSSSPFrontier(b *testing.B) {
	g := ablationGraph()
	red := ear.Reduce(g, ear.APSP)
	r := red.R
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.FrontierSSSP(r, int32(i%r.NumVertices()))
	}
}

func BenchmarkSSSPDeltaStepping(b *testing.B) {
	g := ablationGraph()
	red := ear.Reduce(g, ear.APSP)
	r := red.R
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.DeltaStepping(r, int32(i%r.NumVertices()), 16)
	}
}

// BenchmarkAblationSignedSearch vs LabelledSearch: the two minimum-cycle
// searches of Sections 3.2.1 and 3.3.2.
func BenchmarkAblationLabelledSearch(b *testing.B) {
	g := signedAblationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcb.Compute(g, mcb.Options{UseEar: true, Seed: 5})
	}
}

func BenchmarkAblationSignedSearch(b *testing.B) {
	g := signedAblationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcb.Compute(g, mcb.Options{UseEar: true, SignedSearch: true, Seed: 5})
	}
}

func signedAblationGraph() *graph.Graph {
	cfg := gen.Config{MaxWeight: 10}
	rng := gen.NewRNG(23)
	return gen.GNM(60, 110, cfg, rng)
}
