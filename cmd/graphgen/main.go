// Command graphgen writes synthetic graphs to edge-list files: either a
// named Table 1 dataset stand-in or a raw generator family.
//
//	graphgen -dataset Wordnet3 -scale 0.05 -o wordnet3.txt
//	graphgen -family planar -n 5000 -o planar.txt
//	graphgen -family gnm -n 1000 -m 3000 -subdivide 0.5 -o chains.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "named Table 1 dataset")
		family    = flag.String("family", "", "raw family: gnm, geometric, pa, grid, planar, ring")
		n         = flag.Int("n", 1000, "vertices (raw families)")
		m         = flag.Int("m", 0, "edges (gnm; default 2n)")
		k         = flag.Int("k", 3, "attachment degree (pa)")
		avgDeg    = flag.Float64("avg-degree", 6, "average degree (geometric)")
		subdivide = flag.Float64("subdivide", 0, "fraction of edges to subdivide into degree-2 chains")
		chainLen  = flag.Int("chain-len", 2, "mean injected chain length")
		scale     = flag.Float64("scale", 0.05, "dataset scale")
		seed      = flag.Uint64("seed", 1, "generator seed")
		maxW      = flag.Int("max-weight", 100, "maximum integral edge weight")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "", "output format: edgelist (default), dot, binary; inferred from -o extension (.dot, .earg) when empty")
	)
	cli.SetUsage("graphgen", "[-dataset name | -family fam] [flags]")
	flag.Parse()

	cfg := gen.Config{MaxWeight: *maxW}
	rng := gen.NewRNG(*seed)
	var g *graph.Graph
	switch {
	case *dataset != "":
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			cli.BadUsage("graphgen", "%v", err)
		}
		g = spec.Generate(*scale, *seed)
	case *family != "":
		mm := *m
		if mm == 0 {
			mm = 2 * *n
		}
		switch *family {
		case "gnm":
			g = gen.GNM(*n, mm, cfg, rng)
		case "geometric":
			g = gen.RandomGeometric(*n, *avgDeg, cfg, rng)
		case "pa":
			g = gen.PreferentialAttachment(*n, *k, cfg, rng)
		case "grid":
			side := 1
			for side*side < *n {
				side++
			}
			g = gen.TriangulatedGrid(side, side, cfg, rng)
		case "planar":
			g = gen.PlanarEars(*n, 2, cfg, rng)
		case "ring":
			g = gen.Ring(*n, cfg, rng)
		default:
			cli.BadUsage("graphgen", "unknown family %q", *family)
		}
		if *subdivide > 0 {
			g = gen.Subdivide(g, *subdivide, *chainLen, cfg, rng)
		}
	default:
		cli.BadUsage("graphgen", "need -dataset or -family")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatalf("graphgen", "%v", err)
		}
		defer f.Close()
		w = f
	}
	fm := *format
	if fm == "" {
		switch {
		case strings.HasSuffix(*out, ".dot"):
			fm = "dot"
		case strings.HasSuffix(*out, ".earg"):
			fm = "binary"
		default:
			fm = "edgelist"
		}
	}
	var err error
	switch fm {
	case "edgelist":
		err = graph.WriteEdgeList(w, g)
	case "dot":
		err = graph.WriteDOT(w, g, graph.DOTOptions{ShowWeights: true})
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		cli.BadUsage("graphgen", "unknown format %q", fm)
	}
	if err != nil {
		cli.Fatalf("graphgen", "%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges (%s)\n", g.NumVertices(), g.NumEdges(), fm)
}
