package check

import (
	"context"
	"sync"
	"testing"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qe"
)

// TestDeltaEquivalenceCorpus is the acceptance sweep: every corpus graph ×
// every derived delta script, with the per-block recomputation at 1 and 8
// workers, must answer identically to rebuild-from-scratch (and to
// Floyd–Warshall).
func TestDeltaEquivalenceCorpus(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for _, ng := range Corpus() {
			for _, sc := range DeltaScripts(ng.G, 0xdead) {
				if err := DeltaEquivalence(ng.G, ng.Name, sc.Deltas, workers); err != nil {
					t.Fatalf("workers=%d %s/%s: %v", workers, ng.Name, sc.Name, err)
				}
			}
		}
	}
}

func TestDeltaEquivalenceRandom(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := RandomGraph(seed, 28)
		for _, sc := range DeltaScripts(g, seed) {
			if err := DeltaEquivalence(g, "random", sc.Deltas, 4); err != nil {
				t.Fatalf("seed=%d %s: %v", seed, sc.Name, err)
			}
		}
	}
}

// TestDeltaUnderConcurrentTraffic drives distance queries through a qe
// engine while the oracle underneath it is replaced by successive
// ApplyDelta+SwapSource rounds — the serving-side race the -race runs in
// CI are after. Mid-flight answers may be old or new; after the final
// swap every answer must match a from-scratch rebuild.
func TestDeltaUnderConcurrentTraffic(t *testing.T) {
	g := Corpus()[2].G // necklace: several blocks, one component
	o := apsp.NewOracle(g)
	e := qe.New(o, qe.Config{CacheRows: 64, MaxInflight: 8, QueueDepth: 64, Reg: obs.NewRegistry()})
	ctx := context.Background()

	scripts := DeltaScripts(g, 7)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := int32(e.NumVertices())
				u, v := int32((i+w)%int(n)), int32((i*7)%int(n))
				if _, err := e.Query(ctx, u, v); err != nil {
					t.Errorf("query (%d,%d): %v", u, v, err)
					return
				}
			}
		}(w)
	}

	cur := o
	var applied []apsp.Delta
	for _, sc := range scripts {
		next, res, err := cur.ApplyDelta(ctx, sc.Deltas)
		if err != nil {
			// A later script may be invalid against the already-mutated
			// graph (positional IDs); skip those — the traffic race is the
			// point here, not script validity.
			continue
		}
		e.SwapSource(next, res.Stale)
		cur = next
		applied = append(applied, sc.Deltas...)
	}
	close(stop)
	wg.Wait()

	mutated, err := apsp.MutateGraph(g, applied)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := apsp.NewOracle(mutated)
	n := mutated.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			got, err := e.Query(ctx, int32(u), int32(v))
			if err != nil {
				t.Fatal(err)
			}
			if want := rebuilt.Query(int32(u), int32(v)); got != want {
				t.Fatalf("post-swap d(%d,%d) = %v, rebuild says %v", u, v, got, want)
			}
		}
	}
}

// TestDeltaScriptsAreValid pins the generator's contract: every script it
// derives applies cleanly to its graph.
func TestDeltaScriptsAreValid(t *testing.T) {
	for _, ng := range Corpus() {
		for _, sc := range DeltaScripts(ng.G, 3) {
			if _, err := apsp.MutateGraph(ng.G, sc.Deltas); err != nil {
				t.Fatalf("%s/%s: %v", ng.Name, sc.Name, err)
			}
		}
	}
	if _, _, ok := twoComponentReps(Corpus()[0].G); ok {
		t.Fatal("theta graph reported as disconnected")
	}
	two := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if u, v, ok := twoComponentReps(two); !ok || u == v {
		t.Fatalf("two-component graph: reps (%d,%d,%v)", u, v, ok)
	}
}

// TestMinimizeDeltasShrinks pins the ddmin loop with a synthetic
// predicate: failure iff the script still contains the poisoned record.
func TestMinimizeDeltasShrinks(t *testing.T) {
	g := Corpus()[0].G
	script := DeltaScripts(g, 1)
	var all []apsp.Delta
	for _, sc := range script {
		if sc.Name == "weight-bump" || sc.Name == "zero-weight" || sc.Name == "insert-in-block" {
			all = append(all, sc.Deltas...)
		}
	}
	if len(all) < 3 {
		t.Fatalf("want ≥ 3 single-record scripts, got %d", len(all))
	}
	poison := all[1]
	fails := func(cand []apsp.Delta) bool {
		for _, d := range cand {
			if d == poison {
				return true
			}
		}
		return false
	}
	cur := minimizeDeltas(all, fails)
	if len(cur) != 1 || cur[0] != poison {
		t.Fatalf("ddmin left %v, want just the poisoned record", cur)
	}
}
