package gen

import (
	"repro/internal/graph"
)

// The generators in this file produce the pathological topologies the
// correctness harness (internal/check) and the fuzz seed corpora are built
// from. Each one targets a reassembly corner case of the paper's reductions:
// theta graphs become parallel reduced edges, necklaces reduce to multigraph
// rings, bridge chains stress block-cut stitching, loop flowers exercise
// self-anchored ears (chains with A == B), and Multigraph sprinkles the
// parallel edges and self-loops Section 3.3.1 says G^r naturally contains.

// Theta returns a generalised theta graph: two hub vertices (0 and 1)
// joined by len(paths) internally-disjoint paths, where paths[i] is the
// number of interior (degree-2) vertices on path i. A zero entry yields a
// direct hub–hub edge, so several zero entries produce parallel edges.
// Ear reduction contracts every path to a single edge, making the reduced
// graph a two-vertex multigraph — the minimal parallel-chain stress case.
func Theta(paths []int, cfg Config, rng *RNG) *graph.Graph {
	n := 2
	for _, k := range paths {
		if k > 0 {
			n += k
		}
	}
	b := graph.NewBuilder(n)
	next := int32(2)
	for _, k := range paths {
		prev := int32(0)
		for i := 0; i < k; i++ {
			b.AddEdge(prev, next, rng.Weight(cfg.MaxWeight))
			prev = next
			next++
		}
		b.AddEdge(prev, 1, rng.Weight(cfg.MaxWeight))
	}
	return b.Build()
}

// CycleNecklace returns a closed ring of k cycles: cycle i and cycle i+1
// (mod k) share exactly one vertex. The result is biconnected (removing any
// shared vertex leaves the remaining beads connected through the ring), so
// it is a single BCC whose ear reduction collapses every bead to a pair of
// parallel chains between consecutive shared vertices — a multigraph ring.
// Each bead has cycleLen edges (cycleLen ≥ 2; 2 gives parallel edges
// directly). k must be ≥ 3 for the closed ring to be simple at the joints.
func CycleNecklace(k, cycleLen int, cfg Config, rng *RNG) *graph.Graph {
	if k < 3 {
		k = 3
	}
	if cycleLen < 2 {
		cycleLen = 2
	}
	// Shared vertices are 0..k-1; each bead i adds cycleLen-1 interior
	// vertices forming a cycle through shared[i] and shared[i+1 mod k].
	n := k + k*(cycleLen-2)
	if cycleLen == 2 {
		n = k
	}
	b := graph.NewBuilder(n)
	next := int32(k)
	for i := 0; i < k; i++ {
		a := int32(i)
		c := int32((i + 1) % k)
		// one path of length cycleLen-1 edges and one direct edge a–c
		// together form the bead cycle of cycleLen edges.
		prev := a
		for j := 0; j < cycleLen-2; j++ {
			b.AddEdge(prev, next, rng.Weight(cfg.MaxWeight))
			prev = next
			next++
		}
		b.AddEdge(prev, c, rng.Weight(cfg.MaxWeight))
		b.AddEdge(a, c, rng.Weight(cfg.MaxWeight))
	}
	return b.Build()
}

// BridgeChain returns k cycle blocks of blockLen edges connected in a path
// by bridge edges: block i's exit vertex is joined to block i+1's entry
// vertex by a single edge. Every joint vertex is an articulation point and
// every connecting edge is a bridge (a single-edge BCC), so the block-cut
// tree alternates cycle blocks and bridge blocks — the stitching path the
// Section 2.2 oracle must navigate.
func BridgeChain(k, blockLen int, cfg Config, rng *RNG) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if blockLen < 3 {
		blockLen = 3
	}
	b := graph.NewBuilder(k * blockLen)
	for i := 0; i < k; i++ {
		base := int32(i * blockLen)
		for j := 0; j < blockLen; j++ {
			b.AddEdge(base+int32(j), base+int32((j+1)%blockLen), rng.Weight(cfg.MaxWeight))
		}
		if i > 0 {
			// bridge from the previous block's far side to this block's base
			b.AddEdge(base-int32(blockLen/2), base, rng.Weight(cfg.MaxWeight))
		}
	}
	return b.Build()
}

// LoopFlower returns one hub vertex with k petal cycles attached at the hub
// only, plus one self-loop at the hub. Each petal is a self-anchored ear: a
// loop chain whose two anchors coincide (A == B), the case the 4-way anchor
// recovery of Section 2.1.3 must cover via the along-chain wrap-around.
// petalLen is the number of edges per petal (≥ 2).
func LoopFlower(k, petalLen int, cfg Config, rng *RNG) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if petalLen < 2 {
		petalLen = 2
	}
	n := 1 + k*(petalLen-1)
	b := graph.NewBuilder(n)
	next := int32(1)
	for i := 0; i < k; i++ {
		prev := int32(0)
		for j := 0; j < petalLen-1; j++ {
			b.AddEdge(prev, next, rng.Weight(cfg.MaxWeight))
			prev = next
			next++
		}
		b.AddEdge(prev, 0, rng.Weight(cfg.MaxWeight))
	}
	b.AddEdge(0, 0, rng.Weight(cfg.MaxWeight))
	return b.Build()
}

// Multigraph returns a connected GNM base with extraParallel duplicated
// edges (random existing edges re-added with fresh weights) and extraLoops
// self-loops at random vertices — the multigraph-adjacent profile reduced
// graphs exhibit after ear contraction.
func Multigraph(n, m, extraParallel, extraLoops int, cfg Config, rng *RNG) *graph.Graph {
	base := GNM(n, m, cfg, rng)
	edges := append([]graph.Edge(nil), base.Edges()...)
	for i := 0; i < extraParallel && len(base.Edges()) > 0; i++ {
		e := base.Edges()[rng.Intn(len(base.Edges()))]
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: rng.Weight(cfg.MaxWeight)})
	}
	for i := 0; i < extraLoops && n > 0; i++ {
		v := rng.Int32n(int32(n))
		edges = append(edges, graph.Edge{U: v, V: v, W: rng.Weight(cfg.MaxWeight)})
	}
	return graph.FromEdges(base.NumVertices(), edges)
}
