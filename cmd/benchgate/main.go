// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -json` benchmark output, compares it against a committed
// baseline (ci/bench_baseline.json), prints a benchstat-style table, and
// exits non-zero when a tracked benchmark regresses.
//
//	go test -run='^$' -bench=BenchmarkQE -benchtime=100x -json ./internal/qe/... > BENCH_alloc.json
//	benchgate -input BENCH_alloc.json -baseline ci/bench_baseline.json
//
// allocs/op is the hard metric: it is deterministic for the steady-state
// benchmarks the baseline tracks, a zero baseline demands exactly zero,
// and anything beyond -allocs-threshold fails. ns/op is gated by
// -ns-threshold on quiet machines and disabled with a negative threshold
// on shared CI runners, where wall-clock noise would make a hard gate
// flaky; either way the table records it. -update rewrites the tracked
// entries (with -all, every benchmark in the input) from the current run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
)

func main() {
	input := flag.String("input", "-", "go test -json benchmark stream (- for stdin)")
	baseline := flag.String("baseline", "ci/bench_baseline.json", "committed baseline to gate against")
	allocsThreshold := flag.Float64("allocs-threshold", 0.10, "relative allocs/op slack (0.10 = +10%; zero baselines always require exactly 0)")
	nsThreshold := flag.Float64("ns-threshold", 0.10, "relative ns/op slack (negative disables the wall-clock gate)")
	update := flag.Bool("update", false, "rewrite the baseline's tracked entries from this run instead of gating")
	all := flag.Bool("all", false, "with -update: track every benchmark in the input, not just existing entries")
	cli.SetUsage("benchgate", "[-input bench.json] [-baseline ci/bench_baseline.json] [flags]")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			cli.Fatalf("benchgate", "input: %v", err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		cli.Fatalf("benchgate", "parse %s: %v", *input, err)
	}
	if len(results) == 0 {
		cli.Fatalf("benchgate", "no benchmark results in %s", *input)
	}

	var base baselineFile
	raw, err := os.ReadFile(*baseline)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &base); err != nil {
			cli.Fatalf("benchgate", "baseline %s: %v", *baseline, err)
		}
	case os.IsNotExist(err) && *update:
		// First -update run creates the baseline.
	default:
		cli.Fatalf("benchgate", "baseline: %v", err)
	}

	if *update {
		updateBaseline(&base, results, *all)
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			cli.Fatalf("benchgate", "encode baseline: %v", err)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			cli.Fatalf("benchgate", "write baseline: %v", err)
		}
		fmt.Printf("benchgate: baseline %s updated (%d tracked)\n", *baseline, len(base.Benchmarks))
		return
	}

	rep := gate(results, base, *allocsThreshold, *nsThreshold)
	fmt.Print(rep.Table)
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: gate green")
}
