package apsp

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The delta benchmarks quantify the point of ApplyDelta: a weight change
// confined to one block recomputes that block's S^r table (plus, here,
// the a×a AP table — grid blocks have two cuts each) and nothing else,
// where the naive response rebuilds every block. Triangulated-grid blocks
// keep most vertices at degree ≥ 3, so the ear reduction cannot contract
// them away and the per-block S^r work dominates — the regime the
// incremental path is for.

func deltaBenchOracle(b *testing.B) (*Oracle, []Delta) {
	b.Helper()
	cfg := gen.Config{MaxWeight: 9}
	rng := gen.NewRNG(7)
	blocks := make([]*graph.Graph, 16)
	for i := range blocks {
		blocks[i] = gen.TriangulatedGrid(10, 10, cfg, rng)
	}
	g := gen.ChainBlocks(blocks, cfg, rng)
	o := NewOracle(g)
	ds := []Delta{{Kind: DeltaWeight, Edge: 0, W: g.Edge(0).W + 1}}
	b.ReportMetric(float64(g.NumVertices()), "vertices")
	return o, ds
}

// BenchmarkDeltaApply measures the incremental path: one single-block
// weight delta through ApplyDelta.
func BenchmarkDeltaApply(b *testing.B) {
	o, ds := deltaBenchOracle(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, _, err := o.ApplyDelta(ctx, ds)
		if err != nil {
			b.Fatal(err)
		}
		o = next
		// Alternate the bump's sign so the weight stays in range forever.
		ds[0].W = o.G.Edge(0).W + graph.Weight(1-2*(i%2))
	}
}

// BenchmarkDeltaRebuild measures the naive response to the same delta:
// mutate the edge list and build a fresh oracle.
func BenchmarkDeltaRebuild(b *testing.B) {
	o, ds := deltaBenchOracle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := MutateGraph(o.G, ds)
		if err != nil {
			b.Fatal(err)
		}
		if NewOracle(g) == nil {
			b.Fatal("nil oracle")
		}
	}
}
