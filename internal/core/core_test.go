package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mcb"
	"repro/internal/sssp"
)

func TestShortestPathsEndToEnd(t *testing.T) {
	cfg := gen.Config{MaxWeight: 7}
	rng := gen.NewRNG(5)
	g := gen.Subdivide(gen.GNM(25, 45, cfg, rng), 0.5, 2, cfg, rng)
	o, err := ShortestPaths(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := sssp.BellmanFord(g, 0)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if o.Query(0, v) != ref[v] {
			t.Fatalf("query mismatch at %d", v)
		}
	}
}

func TestMinimumCycleBasisEndToEnd(t *testing.T) {
	cfg := gen.Config{MaxWeight: 5}
	rng := gen.NewRNG(6)
	g := gen.GNM(20, 32, cfg, rng)
	res, err := MinimumCycleBasis(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dim != mcb.Dim(g) {
		t.Fatalf("dim %d, want %d", res.Dim, mcb.Dim(g))
	}
	res2, err := MinimumCycleBasisOpts(g, mcb.Options{UseEar: false, Platform: mcb.Multicore})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWeight != res2.TotalWeight {
		t.Fatal("option variants disagree on weight")
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := ShortestPaths(nil, 1); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := MinimumCycleBasis(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Reduce(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := EarDecomposition(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestReduceAndEars(t *testing.T) {
	cfg := gen.Config{MaxWeight: 3}
	rng := gen.NewRNG(7)
	ring := gen.Ring(15, cfg, rng)
	red, err := Reduce(ring)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumRemoved() != 14 {
		t.Fatalf("ring reduction removed %d", red.NumRemoved())
	}
	ears, err := EarDecomposition(ring)
	if err != nil {
		t.Fatal(err)
	}
	if len(ears) != 1 {
		t.Fatalf("ring has %d ears", len(ears))
	}
}
