package shard

import (
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/snapshot"
)

// planFormatVersion is the version of the plan manifest payload layout,
// checked independently of the container's own version.
const planFormatVersion = 1

const (
	tableKindF64 = 0
	tableKindF32 = 1
)

// Plan is the cluster's source of truth: which shard owns each block of
// the block-cut forest, plus the boundary state the frontend needs to
// stitch per-block rows into whole-graph rows — the articulation-point
// table A, the forest topology, and each block's vertex list in the
// exact order shards emit row values. Everything else (graph edges, ear
// reductions, S^r tables) lives only in the per-shard snapshots.
//
// A Plan answers no distance queries by itself; it is the routing and
// assembly map. Fields are read-only after PlanShards/ReadPlan.
type Plan struct {
	// Epoch identifies this plan's generation. Shard snapshots carved
	// under the plan carry the same epoch, the row RPC validates it per
	// request, and a mismatch is a deployment skew (ErrEpochMismatch),
	// never silently stitched. Non-zero; by default a CRC-64 of the plan
	// content, so re-planning the same oracle the same way reproduces
	// the same epoch.
	Epoch uint64
	// NumShards is how many shards the plan assigns blocks across.
	NumShards int32
	// Compact records the table precision of the oracle the plan was cut
	// from: the AP table here (and the S^r tables in the shard
	// snapshots) are float32 when set.
	Compact bool
	// NumVertices is the full graph's vertex count n.
	NumVertices int
	// CutVertices lists the articulation points by AP index, exactly as
	// in bcc.BlockCutTree.
	CutVertices []int32
	// BlockOf maps each vertex to a block containing it (-1 for none),
	// exactly as in bcc.BlockCutTree — the frontend must pick the same
	// home block for a source as the monolith's Row.
	BlockOf []int32
	// BlockCuts lists, per block, the AP indices of the cut vertices
	// lying on that block — the block-cut forest's adjacency.
	BlockCuts [][]int32
	// BlockVerts lists, per block, the block's vertices in subgraph
	// order — the order BlockRow emits row values in.
	BlockVerts [][]int32
	// BlockShard assigns each block to its owning shard.
	BlockShard []int32

	// The AP table in its stored precision (exactly one non-nil unless
	// the graph has no articulation points).
	apF64 []graph.Weight
	apF32 []float32

	// Derived at load, never serialised.
	numA      int
	cutIndex  []int32   // vertex → AP index, -1 for regular vertices
	cutBlocks [][]int32 // AP index → blocks listing it in BlockCuts (forest adjacency)
	apBlocks  [][]int32 // AP index → blocks whose BlockVerts contain it (own-block membership)
	cutPos    [][]int32 // per block: position of each BlockCuts vertex in BlockVerts
}

// NumBlocks returns the block count of the plan.
func (p *Plan) NumBlocks() int { return len(p.BlockShard) }

// NumAPs returns the articulation-point count a.
func (p *Plan) NumAPs() int { return p.numA }

// OwnedMask returns the per-block ownership flags for one shard, in the
// form apsp.WriteShardSnapshot consumes.
func (p *Plan) OwnedMask(shard int32) []bool {
	owned := make([]bool, len(p.BlockShard))
	for b, s := range p.BlockShard {
		owned[b] = s == shard
	}
	return owned
}

// ShardBlockCount returns how many blocks the plan assigns to shard.
func (p *Plan) ShardBlockCount(shard int32) int {
	n := 0
	for _, s := range p.BlockShard {
		if s == shard {
			n++
		}
	}
	return n
}

// apAt reads the AP table in either precision — the exact replica of the
// oracle's apAt, including the compact read rule that stored +Inf
// (anything above MaxFloat32) restores the exact Inf sentinel.
func (p *Plan) apAt(i, j int32) graph.Weight {
	if p.apF32 != nil {
		v := p.apF32[int(i)*p.numA+int(j)]
		if v > math.MaxFloat32 {
			return inf
		}
		return graph.Weight(v)
	}
	return p.apF64[int(i)*p.numA+int(j)]
}

// PlanOptions configures PlanShards.
type PlanOptions struct {
	// Shards is the shard count; it must be at least 1. More shards than
	// blocks leaves the surplus shards empty.
	Shards int
	// RefinePasses is the partitioner's boundary-refinement sweep count;
	// < 1 resolves to 8.
	RefinePasses int
	// Epoch overrides the plan epoch; 0 derives it from the plan content.
	Epoch uint64
}

// PlanShards cuts a built oracle into a shard plan: blocks are assigned
// to shards by weight-balanced partitioning of the quotient graph (one
// vertex per block, edges where blocks share an articulation point), so
// each shard carries a near-equal share of table memory and forest
// neighbours tend to co-locate. The plan copies the oracle's boundary
// state (AP table, forest topology, block vertex orders); carve the
// per-shard table snapshots with o.WriteShardSnapshot(w, meta,
// plan.OwnedMask(s)).
func PlanShards(o *apsp.Oracle, opts PlanOptions) (*Plan, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", opts.Shards)
	}
	refine := opts.RefinePasses
	if refine < 1 {
		refine = 8
	}
	numB := len(o.Blocks)

	// Serving cost of a block ≈ its resident table (nr²) plus its row
	// length; balance that, not the block count, so one giant biconnected
	// component cannot dominate a shard.
	weights := make([]int64, numB)
	for b, blk := range o.Blocks {
		nr := int64(blk.Ear.Red.R.NumVertices())
		weights[b] = nr*nr + int64(len(blk.Sub.ToParentVertex))
	}

	// Quotient graph over blocks: for each AP, path-connect the blocks
	// sharing it (a path, not a clique — same connectivity, linear size).
	qb := graph.NewBuilder(numB)
	for j := range o.BCT.CutVertices {
		bs := o.BCT.CutBlocks[j]
		for i := 1; i < len(bs); i++ {
			qb.AddEdge(bs[i-1], bs[i], 1)
		}
	}
	assign := partition.PartitionWeighted(qb.Build(), opts.Shards, refine, weights)

	p := &Plan{
		NumShards:   int32(opts.Shards),
		Compact:     o.Compact(),
		NumVertices: o.G.NumVertices(),
		CutVertices: append([]int32(nil), o.BCT.CutVertices...),
		BlockOf:     append([]int32(nil), o.BCT.BlockOf...),
		BlockCuts:   make([][]int32, numB),
		BlockVerts:  make([][]int32, numB),
		BlockShard:  assign,
	}
	for b := 0; b < numB; b++ {
		p.BlockCuts[b] = append([]int32(nil), o.BCT.BlockCuts[b]...)
		p.BlockVerts[b] = append([]int32(nil), o.Blocks[b].Sub.ToParentVertex...)
	}
	a64, a32 := o.APTableRaw()
	if p.Compact {
		p.apF32 = append([]float32(nil), a32...)
	} else {
		p.apF64 = append([]graph.Weight(nil), a64...)
	}
	if err := p.derive(); err != nil {
		return nil, err
	}
	p.Epoch = opts.Epoch
	if p.Epoch == 0 {
		p.Epoch = p.contentEpoch()
	}
	return p, nil
}

// contentEpoch hashes the manifest bytes (with Epoch zeroed) so identical
// plans agree on an epoch without coordination. Never returns 0, the
// "derive me" sentinel.
func (p *Plan) contentEpoch() uint64 {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	saved := p.Epoch
	p.Epoch = 0
	_, _ = p.WriteTo(h)
	p.Epoch = saved
	e := h.Sum64()
	if e == 0 {
		e = 1
	}
	return e
}

// WriteTo serialises the plan manifest as a checksummed EARSNAPS
// container. Sections:
//
//	plan     format version, epoch, shard count, dims, flags
//	assign   block → shard
//	bct      AP list, BlockOf, per-block cut and vertex lists
//	aptable  the a×a articulation distance table, kind-tagged
func (p *Plan) WriteTo(w io.Writer) (int64, error) {
	sw := snapshot.NewWriter()

	md := sw.Section("plan")
	md.U32(planFormatVersion)
	md.U64(p.Epoch)
	md.I32(p.NumShards)
	md.U64(uint64(p.NumVertices))
	md.U64(uint64(len(p.BlockShard)))
	md.U64(uint64(len(p.CutVertices)))
	var flags uint32
	if p.Compact {
		flags |= 1
	}
	md.U32(flags)

	sw.Section("assign").I32s(p.BlockShard)

	be := sw.Section("bct")
	be.I32s(p.CutVertices)
	be.I32s(p.BlockOf)
	for b := range p.BlockShard {
		be.I32s(p.BlockCuts[b])
		be.I32s(p.BlockVerts[b])
	}

	at := sw.Section("aptable")
	if p.Compact {
		at.U32(tableKindF32)
		at.F32s(p.apF32)
	} else {
		at.U32(tableKindF64)
		at.F64s(p.apF64)
	}

	return sw.WriteTo(w)
}

// ReadPlan restores a plan manifest written by WriteTo, validating every
// cross-reference (shard ids, vertex ids, AP indices, table dimensions)
// and rebuilding the derived stitch indexes. Corrupt, truncated, or
// version-skewed input is rejected with an error wrapping one of
// snapshot's typed sentinels; it never panics on hostile bytes.
func ReadPlan(r io.Reader) (p *Plan, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p, err = nil, snapshot.Corruptf("shard: plan decode panic: %v", rec)
		}
	}()
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return nil, err
	}

	md, err := sr.Section("plan")
	if err != nil {
		return nil, err
	}
	ver := md.U32()
	if md.Err() == nil && ver != planFormatVersion {
		return nil, fmt.Errorf("shard: plan manifest format v%d, this build reads v%d: %w",
			ver, planFormatVersion, snapshot.ErrVersionSkew)
	}
	p = &Plan{Epoch: md.U64(), NumShards: md.I32()}
	n := md.U64()
	numB := md.U64()
	numA := md.U64()
	flags := md.U32()
	if err := md.Finish(); err != nil {
		return nil, err
	}
	if flags&^uint32(1) != 0 {
		return nil, snapshot.Corruptf("shard: unknown plan flags %#x", flags)
	}
	p.Compact = flags&1 != 0
	if p.Epoch == 0 {
		return nil, snapshot.Corruptf("shard: plan epoch 0")
	}
	if p.NumShards < 1 {
		return nil, snapshot.Corruptf("shard: plan has %d shards", p.NumShards)
	}
	p.NumVertices = int(n)

	ad, err := sr.Section("assign")
	if err != nil {
		return nil, err
	}
	p.BlockShard = ad.I32s()
	if err := ad.Finish(); err != nil {
		return nil, err
	}
	if uint64(len(p.BlockShard)) != numB {
		return nil, snapshot.Corruptf("shard: %d assignments for %d blocks", len(p.BlockShard), numB)
	}
	for b, s := range p.BlockShard {
		if s < 0 || s >= p.NumShards {
			return nil, snapshot.Corruptf("shard: block %d assigned to shard %d of %d", b, s, p.NumShards)
		}
	}

	bd, err := sr.Section("bct")
	if err != nil {
		return nil, err
	}
	p.CutVertices = bd.I32s()
	p.BlockOf = bd.I32s()
	p.BlockCuts = make([][]int32, numB)
	p.BlockVerts = make([][]int32, numB)
	for b := uint64(0); b < numB; b++ {
		p.BlockCuts[b] = bd.I32s()
		p.BlockVerts[b] = bd.I32s()
	}
	if err := bd.Err(); err != nil {
		return nil, err
	}
	if err := bd.Finish(); err != nil {
		return nil, err
	}
	if uint64(len(p.CutVertices)) != numA {
		return nil, snapshot.Corruptf("shard: plan says %d articulation points, manifest lists %d",
			numA, len(p.CutVertices))
	}
	if uint64(len(p.BlockOf)) != n {
		return nil, snapshot.Corruptf("shard: BlockOf covers %d of %d vertices", len(p.BlockOf), n)
	}
	for v, b := range p.BlockOf {
		if b < -1 || uint64(b) >= numB && b != -1 {
			return nil, snapshot.Corruptf("shard: vertex %d in block %d of %d", v, b, numB)
		}
	}
	for b := range p.BlockCuts {
		for _, ci := range p.BlockCuts[b] {
			if ci < 0 || uint64(ci) >= numA {
				return nil, snapshot.Corruptf("shard: block %d lists AP %d of %d", b, ci, numA)
			}
		}
		for _, v := range p.BlockVerts[b] {
			if v < 0 || uint64(v) >= n {
				return nil, snapshot.Corruptf("shard: block %d lists vertex %d of %d", b, v, n)
			}
		}
	}

	at, err := sr.Section("aptable")
	if err != nil {
		return nil, err
	}
	var tlen int
	switch kind := at.U32(); kind {
	case tableKindF64:
		if at.Err() == nil && p.Compact {
			return nil, snapshot.Corruptf("shard: float64 AP table in a compact plan")
		}
		p.apF64 = at.F64s()
		tlen = len(p.apF64)
	case tableKindF32:
		if at.Err() == nil && !p.Compact {
			return nil, snapshot.Corruptf("shard: float32 AP table in a non-compact plan")
		}
		p.apF32 = at.F32s()
		tlen = len(p.apF32)
	default:
		if err := at.Err(); err != nil {
			return nil, err
		}
		return nil, snapshot.Corruptf("shard: unknown AP table kind %d", kind)
	}
	if err := at.Err(); err != nil {
		return nil, err
	}
	if err := at.Finish(); err != nil {
		return nil, err
	}
	if uint64(tlen) != numA*numA {
		return nil, snapshot.Corruptf("shard: AP table holds %d entries for a=%d", tlen, numA)
	}

	if err := p.derive(); err != nil {
		return nil, err
	}
	return p, nil
}

// derive builds the stitch indexes from the stored fields, validating the
// cross-references it depends on (distinct APs, every block cut present
// in its block's vertex list).
func (p *Plan) derive() error {
	numB := len(p.BlockShard)
	p.numA = len(p.CutVertices)

	p.cutIndex = make([]int32, p.NumVertices)
	for i := range p.cutIndex {
		p.cutIndex[i] = -1
	}
	for j, v := range p.CutVertices {
		if v < 0 || int(v) >= p.NumVertices {
			return snapshot.Corruptf("shard: AP %d is vertex %d of %d", j, v, p.NumVertices)
		}
		if p.cutIndex[v] >= 0 {
			return snapshot.Corruptf("shard: vertex %d listed as AP twice", v)
		}
		p.cutIndex[v] = int32(j)
	}

	p.cutBlocks = make([][]int32, p.numA)
	p.apBlocks = make([][]int32, p.numA)
	p.cutPos = make([][]int32, numB)
	for b := 0; b < numB; b++ {
		for _, ci := range p.BlockCuts[b] {
			p.cutBlocks[ci] = append(p.cutBlocks[ci], int32(b))
		}
		// Own-block membership comes from the vertex lists, not the cut
		// lists: it must replicate the oracle's local(u) >= 0 test, which
		// sees every vertex of a block.
		pos := make([]int32, len(p.BlockCuts[b]))
		for i := range pos {
			pos[i] = -1
		}
		for k, v := range p.BlockVerts[b] {
			if j := p.cutIndex[v]; j >= 0 {
				p.apBlocks[j] = append(p.apBlocks[j], int32(b))
				for i, ci := range p.BlockCuts[b] {
					if ci == j {
						pos[i] = int32(k)
					}
				}
			}
		}
		for i, k := range pos {
			if k < 0 {
				return snapshot.Corruptf("shard: block %d cut vertex %d missing from its vertex list",
					b, p.CutVertices[p.BlockCuts[b][i]])
			}
		}
		p.cutPos[b] = pos
	}
	return nil
}
