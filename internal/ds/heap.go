// Package ds provides the low-level data structures shared by the shortest
// path and minimum cycle basis engines: an indexed binary heap for Dijkstra,
// a monotone bucket queue for small integer weights, a union-find structure,
// and the hybrid chunked list the paper uses to store candidate cycles
// (Section 3.3.2).
package ds

// IndexedHeap is a binary min-heap over the items 0..n-1 keyed by float64
// priorities. It supports DecreaseKey in O(log n), which is what Dijkstra
// needs. Items not currently in the heap have position -1.
//
// The zero value is not usable; construct with NewIndexedHeap.
type IndexedHeap struct {
	keys []float64 // keys[item] = current priority of item
	heap []int32   // heap[i] = item at heap position i
	pos  []int32   // pos[item] = heap position, or -1 if absent
}

// NewIndexedHeap returns an empty heap able to hold items 0..n-1.
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		keys: make([]float64, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *IndexedHeap) Len() int { return len(h.heap) }

// Contains reports whether item is currently in the heap.
func (h *IndexedHeap) Contains(item int32) bool { return h.pos[item] >= 0 }

// Key returns the priority most recently assigned to item via Push or
// DecreaseKey. The value is meaningful only while the item is in the heap or
// immediately after it has been popped.
func (h *IndexedHeap) Key(item int32) float64 { return h.keys[item] }

// Push inserts item with the given key. The item must not already be present.
func (h *IndexedHeap) Push(item int32, key float64) {
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, item)
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers the key of an item already in the heap. Keys may only
// decrease; increasing a key is a programming error and corrupts heap order.
func (h *IndexedHeap) DecreaseKey(item int32, key float64) {
	h.keys[item] = key
	h.up(int(h.pos[item]))
}

// PushOrDecrease inserts the item if absent, otherwise lowers its key if the
// new key is smaller. It reports whether the heap changed.
func (h *IndexedHeap) PushOrDecrease(item int32, key float64) bool {
	if h.pos[item] < 0 {
		h.Push(item, key)
		return true
	}
	if key < h.keys[item] {
		h.DecreaseKey(item, key)
		return true
	}
	return false
}

// Pop removes and returns the item with the minimum key.
// It panics if the heap is empty.
func (h *IndexedHeap) Pop() (item int32, key float64) {
	item = h.heap[0]
	key = h.keys[item]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// Reset empties the heap without reallocating, so it can be reused across
// many Dijkstra runs from different sources.
func (h *IndexedHeap) Reset() {
	for _, it := range h.heap {
		h.pos[it] = -1
	}
	h.heap = h.heap[:0]
}

func (h *IndexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[h.heap[parent]] <= h.keys[h.heap[i]] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.keys[h.heap[l]] < h.keys[h.heap[smallest]] {
			smallest = l
		}
		if r < n && h.keys[h.heap[r]] < h.keys[h.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
